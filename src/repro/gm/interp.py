"""Hardware glue for the interpreted ``send_chunk`` routine.

The firmware programs device registers over the LANai memory bus; this
module implements the device side: the E-bus DMA engine front-end and
the packet-interface TX front-end.  Crucially, the packet that goes onto
the wire is built **from whatever values the (possibly bit-flipped)
firmware wrote into the registers** — corrupted lengths truncate the
payload, corrupted destinations route into the void, corrupted sequence
numbers derail the Go-Back-N conversation, and a corrupted checksum loop
gets the packet dropped at the receiver.  Nothing here "knows" the
intended values; fidelity of failure modes comes from that ignorance.
"""

from __future__ import annotations

from typing import Optional

from ..lanai.bus import MemoryBus
from ..lanai.firmware import MMIO
from ..net.packet import Packet
from ..payload import Payload
from ..sim import Event

__all__ = ["SendChunkGlue"]


class SendChunkGlue:
    """MMIO-register backend for one MCP's interpreted send path."""

    def __init__(self, mcp, bus: MemoryBus):
        self.mcp = mcp
        self.sim = mcp.sim
        self.regs = {}
        self.staged_payload: Optional[Payload] = None
        self.dma_done: Optional[Event] = None
        self.dma_in_flight = False
        self._map(bus)

    def begin_invocation(self) -> None:
        """Reset per-invocation staging (called before each routine run)."""
        self.regs = {}
        self.staged_payload = None
        self.dma_done = None
        self.dma_in_flight = False

    # -- register wiring -----------------------------------------------------------

    def _map(self, bus: MemoryBus) -> None:
        writable = [
            MMIO.DMA_HOST_ADDR, MMIO.DMA_SRAM_ADDR, MMIO.DMA_LEN,
            MMIO.TX_DEST, MMIO.TX_LEN, MMIO.TX_SEQ, MMIO.TX_PORTS,
            MMIO.TX_TYPE, MMIO.TX_SRAM_ADDR, MMIO.TX_CSUM,
            MMIO.TX_MSGID, MMIO.TX_OFFSET, MMIO.TX_TOTAL,
        ]
        for addr in writable:
            bus.map_register(addr, read=self._reader(addr),
                             write=self._writer(addr))
        bus.map_register(MMIO.DMA_GO, write=self._dma_go)
        bus.map_register(MMIO.DMA_WAIT, read=self._dma_wait)
        bus.map_register(MMIO.TX_GO, write=self._tx_go)
        bus.map_register(MMIO.TX_WAIT, read=lambda: 1)

    def _reader(self, addr: int):
        return lambda: self.regs.get(addr, 0)

    def _writer(self, addr: int):
        def write(value: int):
            self.regs[addr] = value
        return write

    # -- DMA front-end --------------------------------------------------------------

    def _dma_go(self, value: int):
        """Start the host->SRAM DMA with the staged descriptor."""
        host_addr = self.regs.get(MMIO.DMA_HOST_ADDR, 0)
        length = self.regs.get(MMIO.DMA_LEN, 0)
        done = self.sim.event()
        self.dma_done = done
        self.dma_in_flight = True
        self.sim.spawn(self._dma_run(host_addr, length, done),
                       name="%s.idma" % self.mcp.name)
        return None

    def _dma_run(self, host_addr: int, length: int, done: Event):
        # Clamp absurd corrupted lengths: the real engine would fault or
        # run to the end of the pull window; either way no more than the
        # SRAM buffer's worth moves.
        length = min(length & 0xFFFFFFFF, 1 << 20)
        result = yield from self.mcp.nic.dma.read_from_host(host_addr, length)
        self.dma_in_flight = False
        if result.ok:
            self.staged_payload = result.payload
            done.succeed(1)
        else:
            self.staged_payload = None
            done.succeed(0)

    def _dma_wait(self):
        """Blocking status read: 1 = done OK, 0 = error / nothing pending."""
        if self.dma_done is None:
            return 0
        return self.dma_done  # Event: the CPU parks on it

    # -- TX front-end ----------------------------------------------------------------

    def _tx_go(self, value: int):
        """Build a packet from the TX registers and put it on the wire."""
        if self.dma_in_flight:
            # Firing the packet interface while the E-bus DMA is still
            # running sends whatever is in the buffer so far: garbage.
            payload = Payload.phantom(
                self.regs.get(MMIO.TX_LEN, 0) & 0xFFFF, tag=0xD1517)
        elif self.staged_payload is not None:
            payload = self.staged_payload
        else:
            payload = Payload.from_bytes(b"")
        declared = self.regs.get(MMIO.TX_LEN, 0)
        dest = self.regs.get(MMIO.TX_DEST, 0)
        ports = self.regs.get(MMIO.TX_PORTS, 0)
        route = self.mcp.routing_table.get(dest)
        pkt = Packet(
            ptype=self.regs.get(MMIO.TX_TYPE, 0),
            src_node=self.mcp.node_id,
            dest_node=dest,
            route=list(route or []),
            src_port=(ports >> 8) & 0xFF,
            dst_port=ports & 0xFF,
            seq=self.regs.get(MMIO.TX_SEQ, 0),
            msg_id=self.regs.get(MMIO.TX_MSGID, 0),
            frag_offset=self.regs.get(MMIO.TX_OFFSET, 0),
            msg_total=self.regs.get(MMIO.TX_TOTAL, 0),
            declared_len=declared,
            payload=payload,
            hdr_csum=self.regs.get(MMIO.TX_CSUM, 0),
        )
        # The hardware CRC engine seals whatever it was given: a packet
        # corrupted *before* this point carries a consistent CRC and will
        # be accepted (then fail higher-level checks, or be silently
        # wrong data — Table 1's "Messages Corrupted").
        pkt.seal()
        self.mcp._transmit(pkt)
        return None
