"""The GM user library: ports and the application-facing API.

GM applications communicate through *ports*: they allocate pinned
buffers, post sends (relinquishing a send token), provide receive
buffers (relinquishing a receive token), and poll the port's receive
queue for events.  Events the application does not recognise go to
``gm_unknown()`` — the hook FTGM later uses to hide fault recovery.

Method naming follows the GM C API loosely (``send`` ~
``gm_send_with_callback``, ``provide_receive_buffer`` ~
``gm_provide_receive_buffer``, ``receive`` ~ ``gm_receive``,
``unknown`` ~ ``gm_unknown``).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..errors import GmNoTokens, GmPortClosed, GmSendError
from ..hw.host import Host
from ..payload import Payload
from ..sim import Simulator, Store
from . import constants as C
from .events import EventType, GmEvent
from .tokens import RecvToken, SendToken

__all__ = ["Port", "SendOutcome"]


class SendOutcome:
    """Passed to send callbacks."""

    def __init__(self, ok: bool, error: Optional[str] = None,
                 context=None):
        self.ok = ok
        self.error = error
        self.context = context

    def __repr__(self) -> str:
        return "SendOutcome(ok=%r, error=%r)" % (self.ok, self.error)


class Port:
    """One GM port as seen by a user process."""

    def __init__(self, sim: Simulator, host: Host, driver, mcp,
                 port_id: int):
        self.sim = sim
        self.host = host
        self.driver = driver
        self.mcp = mcp
        self.port_id = port_id
        self.open = True
        self.send_tokens = C.SEND_TOKENS_PER_PORT
        self.recv_tokens = C.RECV_TOKENS_PER_PORT
        self.recv_queue: Store = Store(sim)
        self._callbacks = {}        # msg_id -> (callback, context)
        self._send_regions = {}     # msg_id -> DmaRegion
        self._recv_regions = {}     # recv token id -> DmaRegion
        # Metrics.
        self.sends_completed = 0
        self.sends_errored = 0
        self.messages_received = 0

    # -- event sink (called by the MCP's event-post DMA) --------------------------

    def _event_sink(self, event: GmEvent) -> None:
        self.recv_queue.put(event)

    # -- sending ------------------------------------------------------------------

    def send(self, payload: Payload, dest_node: int, dest_port: int,
             priority: int = 0, callback: Optional[Callable] = None,
             context=None) -> Generator:
        """Post a send (~ ``gm_send_with_callback``).

        Relinquishes one send token; the callback fires (from within
        ``receive``) when the message is acknowledged end-to-end.
        Returns the message id.
        """
        self._check_open()
        if self.send_tokens <= 0:
            raise GmNoTokens("port %d is out of send tokens" % self.port_id)
        self.send_tokens -= 1
        region = self.host.alloc_dma(max(payload.size, 1), self.port_id)
        region.payload = payload
        token = SendToken(
            src_port=self.port_id, dest_node=dest_node, dest_port=dest_port,
            region_id=region.region_id, host_addr=region.addr,
            size=payload.size, priority=priority,
            callback=callback, context=context,
            msg_id=next(self.sim.ids))
        self._callbacks[token.msg_id] = (callback, context)
        self._send_regions[token.msg_id] = region
        yield from self._prepare_send(token)
        yield from self.host.cpu_execute(C.HOST_SEND_OVERHEAD_US, "send")
        self.mcp.doorbell_send(token)
        tracer = self.driver.tracer
        if tracer.enabled:
            tracer.emit(self.sim.now, self.driver.trace_source, "flow",
                        _ph="b", _cat="msg", _id=token.msg_id,
                        name="message", dest_node=dest_node,
                        dest_port=dest_port, size=payload.size)
        return token.msg_id

    def _prepare_send(self, token: SendToken) -> Generator:
        """FTGM hook: generate the sequence number, copy the token."""
        return
        yield  # pragma: no cover - makes this a generator

    def send_and_wait(self, payload: Payload, dest_node: int,
                      dest_port: int, priority: int = 0) -> Generator:
        """Send and poll until this message completes (or fails).

        Convenience for synchronous callers (ping-pong tests, MPI).
        Events arriving meanwhile are processed normally; RECEIVED
        events are re-queued for the application.
        """
        done = {}

        def callback(outcome: SendOutcome):
            done["outcome"] = outcome

        yield from self.send(payload, dest_node, dest_port,
                             priority=priority, callback=callback)
        stash = []
        while "outcome" not in done:
            event = yield from self.receive()
            if event is not None and event.etype == EventType.RECEIVED:
                stash.append(event)
        for event in stash:
            self.recv_queue.put(event)
        outcome = done["outcome"]
        if not outcome.ok:
            raise GmSendError(outcome.error or "send failed")
        return outcome

    def receive_message(self, timeout: Optional[float] = None) -> Generator:
        """Poll until a RECEIVED event arrives (or the timeout passes)."""
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            remaining = None
            if deadline is not None:
                remaining = max(deadline - self.sim.now, 0.0)
                if remaining == 0.0:
                    return None
            event = yield from self.receive(timeout=remaining)
            if event is None:
                return None
            if event.etype == EventType.RECEIVED:
                return event

    # -- receiving -----------------------------------------------------------------

    def provide_receive_buffer(self, size: int,
                               priority: int = 0) -> Generator:
        """Surrender a receive buffer (~ ``gm_provide_receive_buffer``)."""
        self._check_open()
        if self.recv_tokens <= 0:
            raise GmNoTokens("port %d is out of receive tokens"
                             % self.port_id)
        self.recv_tokens -= 1
        region = self.host.alloc_dma(max(size, 1), self.port_id)
        token = RecvToken(port=self.port_id, region_id=region.region_id,
                          host_addr=region.addr, size=size,
                          priority=priority, token_id=next(self.sim.ids))
        self._recv_regions[token.token_id] = region
        yield from self._prepare_receive(token)
        yield from self.host.cpu_execute(0.1, "recv-post")
        self.mcp.doorbell_recv(token)
        return token.token_id

    def _prepare_receive(self, token: RecvToken) -> Generator:
        """FTGM hook: copy the receive token."""
        return
        yield  # pragma: no cover

    def receive(self, timeout: Optional[float] = None) -> Generator:
        """Poll the receive queue (~ ``gm_receive``).

        Returns the next application-visible event (RECEIVED, SENT,
        SEND_ERROR, ALARM) or None on timeout.  SENT/SEND_ERROR are
        *also* handled internally before being returned — callbacks fire
        here, matching GM's poll-driven callback model — and internal
        event types go to :meth:`unknown`, which is where FTGM hides its
        recovery.  Use :meth:`receive_message` to wait for data only.
        """
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            self._check_open()
            get = self.recv_queue.get()
            if deadline is None:
                event = yield get
            else:
                remaining = max(deadline - self.sim.now, 0.0)
                waiter = self.sim.timeout(remaining)
                fired = yield self.sim.any_of([get, waiter])
                if get not in fired:
                    self.recv_queue.cancel(get)
                    return None
                event = fired[get]
            handled = yield from self._handle_event(event)
            if handled is not None:
                return handled

    def _handle_event(self, event: GmEvent) -> Generator:
        """Process one event; returns it if the application should see it."""
        if event.etype == EventType.RECEIVED:
            yield from self.host.cpu_execute(C.HOST_RECV_OVERHEAD_US, "recv")
            yield from self._on_received(event)
            self.recv_tokens += 1
            region = self._recv_regions.pop(event.recv_token_id, None)
            if region is not None:
                self.host.free_dma(region)
            self.messages_received += 1
            return event
        if event.etype == EventType.SENT:
            yield from self._on_sent(event)
            self._finish_send(event, SendOutcome(True, context=event.context))
            return event
        if event.etype == EventType.SEND_ERROR:
            self.sends_errored += 1
            self._finish_send(
                event, SendOutcome(False, error=event.error,
                                   context=event.context))
            return event
        if event.etype == EventType.ALARM:
            return event
        yield from self.unknown(event)
        return None

    def _on_received(self, event: GmEvent) -> Generator:
        """FTGM hook: record the ACKed seq, drop the recv-token copy."""
        return
        yield  # pragma: no cover

    def _on_sent(self, event: GmEvent) -> Generator:
        """FTGM hook: drop the send-token copy just before the callback."""
        return
        yield  # pragma: no cover

    def _finish_send(self, event: GmEvent, outcome: SendOutcome) -> None:
        self.send_tokens += 1
        if outcome.ok:
            self.sends_completed += 1
            tracer = self.driver.tracer
            if tracer.enabled:
                tracer.emit(self.sim.now, self.driver.trace_source, "flow",
                            _ph="e", _cat="msg", _id=event.msg_id,
                            name="message")
        callback, context = self._callbacks.pop(event.msg_id, (None, None))
        region = self._send_regions.pop(event.msg_id, None)
        if region is not None:
            self.host.free_dma(region)
        outcome.context = context
        if callback is not None:
            callback(outcome)

    def unknown(self, event: GmEvent) -> Generator:
        """~ ``gm_unknown``: default handling of internal events.

        Plain GM just drops what it does not understand; FTGM overrides
        this to catch FAULT_DETECTED and run transparent recovery.
        """
        return
        yield  # pragma: no cover

    # -- misc ---------------------------------------------------------------------------

    def set_alarm(self, delay_us: float, context=None) -> None:
        """Schedule an ALARM event on this port's receive queue."""
        self._check_open()
        self.mcp.host_request(("alarm", self.sim.now + delay_us,
                               self.port_id, context))

    def close(self) -> Generator:
        """Close the port (host request, serviced by L_timer)."""
        if not self.open:
            return
        self.open = False
        done = self.sim.event()
        self.mcp.host_request(("close", self.port_id, done))
        yield done
        self.driver._port_closed(self)

    def _check_open(self) -> None:
        if not self.open:
            raise GmPortClosed("port %d is closed" % self.port_id)
