"""The Myrinet Control Program (native model).

GM's MCP is an event-driven program: a dispatch loop runs handler
routines when their conditions hold (a send is posted and the DMA
interface is free; a packet arrived; an interval timer expired...).  We
model the dispatch loop and every protocol behaviour natively — Go-Back-N
reliability, 4 KB fragmentation/reassembly, token matching, event
posting, the ``L_timer()`` housekeeping routine — and charge calibrated
LANai occupancy per action.  Event handling is **serialized**, exactly as
on the real LANai; that serialization is what stretches the gap between
``L_timer()`` invocations to the ~800 µs the paper measured, and what the
watchdog interval is derived from.

When built with ``interpreted=True`` the per-fragment ``send_chunk`` work
runs on the :class:`~repro.lanai.cpu.LanaiCpu` interpreter executing the
assembled firmware — the fault-injection target.  A hang there stops the
dispatch loop forever (until card reset + reload), which is precisely the
failure the paper's watchdog catches.

The FTGM variant subclasses this and overrides the small set of hooks
marked "FTGM hook" below.
"""

from __future__ import annotations

import os
from typing import Dict, Generator, List, Optional, Tuple

from ..errors import GmError
from ..hw.nic import Nic
from ..hw.registers import IsrBits
from ..lanai import firmware as fw
from ..lanai.bus import MemoryBus
from ..lanai.cpu import LanaiCpu
from ..net.mapper import MapperAgent
from ..net.packet import Packet, PacketType
from ..payload import Payload
from ..sim import Simulator, Store, Tracer
from . import constants as C
from .events import EventType, GmEvent
from .interp import SendChunkGlue
from .streams import RxStream, StreamKey, TxStream
from .tokens import RecvToken, SendToken

__all__ = ["Mcp", "McpPort"]


class McpPort:
    """LANai-side state for one port.

    Token queues exist independently of the port's open flag: during
    FTGM recovery the host re-posts its token copies *before* the
    "reopen" request is serviced by L_timer, and those tokens must not
    be lost (the LANai only refuses to *deliver* to a closed port).
    """

    def __init__(self, port_id: int, open_: bool = True):
        self.port_id = port_id
        self.recv_tokens: List[RecvToken] = []
        self.open = open_


class Mcp:
    """One NIC's control program (plain GM semantics)."""

    name_prefix = "gm-mcp"
    # Extra per-packet LANai occupancy; FTGM's sequence bookkeeping and
    # per-(connection, port) ACK table raise these (Table 2: 6.0 -> 6.8us).
    lanai_send_extra_us = 0.0
    lanai_recv_extra_us = 0.0
    # Plain-GM idle ticks are pure bookkeeping, so runs of them can be
    # folded into arithmetic (see _idle_skip_deadline).  Subclasses whose
    # L_timer does observable work every tick turn this off.
    _idle_skip = True

    def __init__(self, sim: Simulator, nic: Nic, node_id: int,
                 tracer: Optional[Tracer] = None,
                 interpreted: bool = False):
        self.sim = sim
        self.nic = nic
        self.node_id = node_id
        self.name = "%s%d" % (self.name_prefix, node_id)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.interpreted = interpreted

        self.routing_table: Dict[int, List[int]] = {}
        self.ports: Dict[int, McpPort] = {}
        self.tx_streams: Dict[StreamKey, TxStream] = {}
        self.rx_streams: Dict[StreamKey, RxStream] = {}
        self.rx_frags: Dict[StreamKey, List[Payload]] = {}

        self.doorbells: Store = Store(sim)
        self.host_requests: List[Tuple] = []
        self.alarms: List[Tuple[float, int, object]] = []
        self.event_sinks: Dict[int, callable] = {}
        self.on_routes_installed = None  # driver hook (host route copy)
        self.heartbeat_listener = None   # peer-watchdog hook (extension)

        self.running = False
        self.paused = False   # checkpoint support: freeze all but L_timer
        self.dead_reason: Optional[str] = None
        self._wake = None
        self._proc = None
        # Tickless idle: an IT0 expiry that finds the dispatch loop
        # parked with nothing else to do is serviced by two small
        # callbacks instead of resuming the generator twice per tick
        # (see _fused_l_timer).  REPRO_TICKLESS=0 disables the fast path.
        self._tickless = os.environ.get("REPRO_TICKLESS", "1") != "0"
        self._fuse_end = -1.0
        self._fused_cb = self._fused_l_timer
        self._fused_tail_cb = self._fused_tail
        # Lazy node parking: a fully quiescent MCP (no streams, no
        # alarms, no pending work of any kind) leaves the event wheel
        # entirely — IT0 disarmed, nothing scheduled — and is woken by
        # the first doorbell/packet/host request, replaying the missed
        # L_timer windows arithmetically on the exact tick chain.  Off
        # by default; the cluster builder enables it at scale (see
        # repro.cluster.LAZY_AUTO_THRESHOLD) via set_lazy().
        self._lazy = False
        self._parked = False
        self._park_next_tick = 0.0   # when the next tick would start
        self._park_prev_end = 0.0    # last completed housekeeping window

        # Interpreted-mode machinery.
        self.cpu: Optional[LanaiCpu] = None
        self.glue: Optional[SendChunkGlue] = None
        self.firmware = None

        # The mapper protocol endpoint for this interface.
        self.mapper_agent = MapperAgent(
            sim, node_id, self._transmit, self._install_routes, tracer)

        # Statistics / calibration probes.
        self.stats = {
            "packets_sent": 0, "packets_received": 0, "crc_drops": 0,
            "csum_drops": 0, "malformed_drops": 0, "no_token_drops": 0,
            "stale_packets": 0, "nacks_sent": 0, "retransmit_rounds": 0,
            "sends_failed": 0, "messages_delivered": 0, "acks_sent": 0,
            "mcp_restarts": 0,
        }
        self.busy_time = 0.0
        self.send_busy_time = 0.0
        self.recv_busy_time = 0.0
        self.l_timer_invocations = 0
        self.l_timer_last: Optional[float] = None
        self.l_timer_max_gap = 0.0
        self.ticks_absorbed = 0   # idle ticks folded by the tickless path
        self.ticks_parked = 0     # ticks replayed across parked spans

        # Test hooks for adversarially timed crashes (Figures 4 and 5).
        self.hang_after_ack_before_dma = False   # receiver-side, Fig. 5
        self.hang_before_ack_processing = False  # sender-side, Fig. 4
        self.hang_after_dma_before_ack = False   # FTGM window counterpart

    # -- lifecycle ------------------------------------------------------------------

    def set_lazy(self, enabled: bool) -> None:
        """Opt this MCP in (or out) of idle parking.

        ``REPRO_LAZY=1``/``0`` overrides either way; anything else (or
        unset) keeps the caller's choice.  Parking rides on the tickless
        machinery and replays whole windows arithmetically, so it is
        unavailable when tickless is disabled or the firmware path is
        interpreted (an interpreter tick is not pure bookkeeping).
        """
        env = os.environ.get("REPRO_LAZY", "")
        if env == "1":
            enabled = True
        elif env == "0":
            enabled = False
        self._lazy = bool(enabled) and self._tickless \
            and not self.interpreted

    def start(self) -> None:
        """Begin dispatch; arm IT0 (the L_timer driver)."""
        if self.running:
            raise GmError("MCP already running")
        self.running = True
        self.dead_reason = None
        if self.interpreted:
            self.firmware = fw.build_firmware()
            self.firmware.load_into(self.nic.sram)
            bus = MemoryBus(self.nic.sram)
            self.cpu = LanaiCpu(self.sim, bus, self.tracer,
                                name="lanai%d" % self.node_id)
            self.glue = SendChunkGlue(self, bus)
        self.nic.mcp = self
        self.nic.status.add_listener(self._isr_listener)
        self.nic.timers[0].set_us(C.L_TIMER_INTERVAL_US)
        self.l_timer_last = self.sim.now
        self._proc = self.sim.spawn(self._dispatch(), name=self.name)
        self.tracer.emit(self.sim.now, self.name, "mcp_started",
                         interpreted=self.interpreted)

    def stop(self, reason: str = "stopped") -> None:
        """Stop dispatch (card reset path, or a modelled native hang)."""
        self.running = False
        self.dead_reason = reason
        try:
            self.nic.status.remove_listener(self._isr_listener)
        except ValueError:
            pass
        self._kick()

    def die(self, reason: str) -> None:
        """The LANai hung: dispatch stops, timers are NOT re-armed.

        IT0/IT1 hardware keeps counting — that asymmetry is the watchdog.
        """
        self.tracer.emit(self.sim.now, self.name, "mcp_died", reason=reason)
        self.stop(reason)

    @property
    def hung(self) -> bool:
        return not self.running and self.dead_reason not in (None, "stopped")

    def ckpt_state(self) -> dict:
        """Snapshot contract: the full control-program protocol state.

        Covers lifecycle (incl. the lazy-parking latches — a parked MCP
        must restore parked, with its arithmetic tick chain intact),
        routing, per-port token queues, both stream directions, pending
        host work, and the calibration counters.  Firmware bytes are not
        repeated here: interpreted-mode firmware lives in SRAM, which the
        NIC contract already digests.
        """
        return {
            "name": self.name,
            "running": self.running,
            "paused": self.paused,
            "dead_reason": self.dead_reason,
            "interpreted": self.interpreted,
            "lazy": self._lazy,
            "parked": self._parked,
            "park_next_tick": self._park_next_tick,
            "park_prev_end": self._park_prev_end,
            "fuse_end": self._fuse_end,
            "routing_table": {str(dest): list(route) for dest, route
                              in sorted(self.routing_table.items())},
            "ports": {
                str(port_id): {
                    "open": port.open,
                    "recv_tokens": [token.token_id
                                    for token in port.recv_tokens],
                }
                for port_id, port in sorted(self.ports.items())
            },
            "tx_streams": [self.tx_streams[key].ckpt_state()
                           for key in sorted(self.tx_streams)],
            "rx_streams": [self.rx_streams[key].ckpt_state()
                           for key in sorted(self.rx_streams)],
            "rx_frags": {str(list(key)): len(frags) for key, frags
                         in sorted(self.rx_frags.items())},
            "doorbells": self.doorbells.ckpt_state(),
            "host_requests": len(self.host_requests),
            "alarms": [[alarm[0], alarm[1]] for alarm in self.alarms],
            "stats": dict(sorted(self.stats.items())),
            "busy_time": self.busy_time,
            "send_busy_time": self.send_busy_time,
            "recv_busy_time": self.recv_busy_time,
            "l_timer_invocations": self.l_timer_invocations,
            "l_timer_last": self.l_timer_last,
            "l_timer_max_gap": self.l_timer_max_gap,
            "ticks_absorbed": self.ticks_absorbed,
            "ticks_parked": self.ticks_parked,
            "cpu": self.cpu.ckpt_state() if self.cpu is not None else None,
        }

    # -- host-facing entry points (called via driver/library) ------------------------

    def doorbell_send(self, token: SendToken) -> None:
        self.doorbells.put(("send", token))
        self.nic.status.set_bits(IsrBits.SEND_POSTED)

    def doorbell_recv(self, token: RecvToken) -> None:
        self.doorbells.put(("recv", token))
        self.nic.status.set_bits(IsrBits.RECV_POSTED)

    def host_request(self, request: Tuple) -> None:
        """Queue a request serviced by L_timer (open/close/alarm/...)."""
        self.host_requests.append(request)
        self.nic.status.set_bits(IsrBits.HOST_REQUEST)

    # -- stream keying (FTGM hook) ---------------------------------------------------

    def tx_stream_key(self, token: SendToken) -> StreamKey:
        """Plain GM: one stream per remote node (Figure 6a)."""
        return (token.dest_node,)

    def rx_stream_key(self, pkt: Packet) -> StreamKey:
        return (pkt.src_node,)

    def ack_stream_key(self, pkt: Packet) -> StreamKey:
        """Key of OUR tx stream identified by an incoming ACK/NACK."""
        return (pkt.src_node,)

    def assign_seq_base(self, stream: TxStream, token: SendToken) -> None:
        """Plain GM: the MCP owns sequence numbers (token.seq_base None)."""
        token.seq_base = None

    def ack_after_dma(self, is_final: bool) -> bool:
        """Plain GM ACKs on acceptance, before the DMA (the Fig. 5 bug)."""
        return False

    def event_seq_field(self, stream: RxStream) -> Optional[int]:
        """Plain GM does not report sequence numbers to the host."""
        return None

    def _l_timer_extra(self) -> None:
        """FTGM hook: reset the watchdog timer, clear the magic word."""

    # -- dispatch loop -----------------------------------------------------------

    def _isr_listener(self, mask: int) -> None:
        if mask & IsrBits.IT0_EXPIRED and self._tickless and self.running:
            wake = self._wake
            if (wake is not None and wake.callbacks is not None
                    and not wake._scheduled and not self.host_requests):
                now = self.sim._now
                if not any(a[0] <= now for a in self.alarms):
                    # Idle tick: service L_timer via callbacks, leaving
                    # the dispatch generator parked.  The zero-delay
                    # timeout lands at the exact heap position (same
                    # sequence draw) the wake resume would have taken,
                    # so event ordering is unchanged.
                    t = self.sim.timeout(0.0)
                    t.callbacks.append(self._fused_cb)
                    return
        self._kick()

    def _kick(self) -> None:
        if self._parked:
            # First touch after a parked span: replay the missed ticks
            # and restore the timer chain before waking dispatch.
            self._unpark()
        wake = self._wake
        if wake is not None and wake.callbacks is not None \
                and not wake._scheduled:  # i.e. not wake.triggered
            if self.sim._now < self._fuse_end:
                # Inside a fused L_timer charge window the real path
                # has _wake = None, so kicks must not wake dispatch
                # early; the tail's work scan picks anything up at the
                # window end, exactly as the real post-charge scan does.
                return
            wake.succeed()

    def _dispatch(self) -> Generator:
        while self.running:
            progressed = yield from self._step()
            if not self.running:
                break
            if progressed:
                continue
            # A False return from _step() proves there is no work *now*:
            # it checked IT0, pause, the rings, deadlines and sendables
            # without yielding, so no sim time has passed and a separate
            # has-work re-check would test the same state again.  Nothing
            # can kick us before the yield either, so the wake event is
            # allocated only when the loop actually goes to sleep.
            self._wake = self.sim.event()
            yield self._wake
            self._wake = None

    def _step(self) -> Generator:
        """One dispatch cycle; returns True if any work was done."""
        status = self.nic.status
        # 1. Timer routine (housekeeping).
        if status.isr & IsrBits.IT0_EXPIRED:
            status.isr &= ~IsrBits.IT0_EXPIRED  # clear_bits, inlined
            yield from self._l_timer()
            return True
        if self.paused:
            # Paused for a checkpoint: L_timer (above) still runs — it
            # is how the resume request arrives — but nothing else does.
            return False
        # 2. Arrived packets.
        ring_items = self.nic.recv_ring.items
        if ring_items:
            pkt = ring_items.popleft()
            if not ring_items:
                status.isr &= ~IsrBits.PACKET_ARRIVED
            yield from self._handle_packet(pkt)
            return True
        # 3. Host doorbells.
        ok, bell = self.doorbells.try_get()
        if ok:
            yield from self._handle_doorbell(bell)
            return True
        # 4. Retransmit deadlines.  (The dict is scanned directly and the
        # winner handled only after iteration ends — handlers may mutate
        # tx_streams, so acting mid-iteration would be unsafe, but a
        # per-poll list() copy is not needed just to *find* the stream.)
        now = self.sim.now
        found = None
        for stream in self.tx_streams.values():
            if stream.deadline is not None and stream.deadline <= now:
                found = stream
                break
        if found is not None:
            yield from self._handle_timeout(found)
            return True
        # 5. Pump one sendable fragment.
        for stream in self.tx_streams.values():
            if stream.has_sendable():
                found = stream
                break
        if found is not None:
            yield from self._send_fragment(found)
            return True
        return False

    # -- L_timer ------------------------------------------------------------------

    def _l_timer(self) -> Generator:
        """GM's housekeeping routine, invoked via IT0.

        "The host uses this routine to notify the LANai of various user
        actions, such as opening and closing a port, ... as well as
        setting alarms.  At the end of the L_timer() routine, IT0 is
        reset."
        """
        now = self.sim.now
        if self.l_timer_last is not None:
            gap = now - self.l_timer_last
            if gap > self.l_timer_max_gap:
                self.l_timer_max_gap = gap
        self.l_timer_last = now
        self.l_timer_invocations += 1
        self.nic.status.clear_bits(IsrBits.HOST_REQUEST)

        if self.host_requests:
            requests, self.host_requests = self.host_requests, []
            for request in requests:
                yield from self._handle_host_request(request)

        if self.alarms:
            due = [a for a in self.alarms if a[0] <= now]
            self.alarms = [a for a in self.alarms if a[0] > now]
            for _when, port_id, context in due:
                yield from self._post_event(GmEvent(
                    EventType.ALARM, port_id, context=context))

        yield from self._charge(1.5, "housekeeping")
        self._l_timer_extra()
        self.nic.timers[0].set_us(C.L_TIMER_INTERVAL_US)

    def _fused_l_timer(self, _event) -> None:
        """Front half of an idle-tick L_timer, run without the generator.

        Runs at the exact heap position the parked dispatch loop would
        have resumed at; replicates _step's IT0 branch plus an empty
        L_timer (no host requests, no due alarms — the eligibility
        conditions) and schedules the back half at the end of the 1.5 us
        housekeeping charge, which is the same sequence draw the real
        path's charge timeout makes.
        """
        status = self.nic.status
        wake = self._wake
        now = self.sim._now
        if (not self.running or wake is None or wake.callbacks is None
                or wake._scheduled or self.host_requests
                or not status.isr & IsrBits.IT0_EXPIRED
                or any(a[0] <= now for a in self.alarms)):
            # A same-instant arrival broke eligibility between the timer
            # notification and this callback: take the real path.
            self._kick()
            return
        status.isr &= ~IsrBits.IT0_EXPIRED
        if self.l_timer_last is not None:
            gap = now - self.l_timer_last
            if gap > self.l_timer_max_gap:
                self.l_timer_max_gap = gap
        self.l_timer_last = now
        self.l_timer_invocations += 1
        status.clear_bits(IsrBits.HOST_REQUEST)
        self.busy_time += 1.5
        self._fuse_end = now + 1.5
        tail = self.sim.timeout(1.5)
        tail.callbacks.append(self._fused_tail_cb)

    def _fused_tail(self, _event) -> None:
        """Back half of an idle-tick L_timer: the post-charge work.

        Mirrors what the real generator does when the housekeeping
        charge completes — _l_timer_extra and the IT0 re-arm run even if
        the MCP was stopped mid-window (the suspended generator does the
        same) — then re-creates the post-L_timer dispatch scan: work
        that arrived during the charge window is handled now, not when
        it arrived.
        """
        self._l_timer_extra()
        it0 = self.nic.timers[0]
        if not self.running:
            # Real path: the loop breaks and the process ends; wake the
            # parked generator so it can observe running=False and exit.
            it0.set_us(C.L_TIMER_INTERVAL_US)
            self._kick()
            return
        if self.paused:
            it0.set_us(C.L_TIMER_INTERVAL_US)
            return
        if self.nic.recv_ring.items or self.doorbells.items:
            it0.set_us(C.L_TIMER_INTERVAL_US)
            self._kick()
            return
        now = self.sim._now
        for stream in self.tx_streams.values():
            if stream.deadline is not None and stream.deadline <= now:
                it0.set_us(C.L_TIMER_INTERVAL_US)
                self._kick()
                return
        for stream in self.tx_streams.values():
            if stream.has_sendable():
                it0.set_us(C.L_TIMER_INTERVAL_US)
                self._kick()
                return
        # Fully quiescent and lazy: leave the wheel entirely.  Unlike
        # the fold below this needs no horizon scan — any event that
        # could affect this MCP necessarily touches it (packet, bell,
        # request), and the touch itself triggers the replay.
        if self._lazy and not self.alarms and not self.host_requests \
                and self._quiescent():
            self._park(now)
            return
        # Nothing to do and the dispatch loop stays parked.  Fold any
        # run of provably idle upcoming ticks into arithmetic
        # bookkeeping and arm IT0 directly at the first tick whose
        # housekeeping window could interact with another event; tag the
        # expiry so peer MCPs' fast-forward scans can ignore it too.
        # Pending alarms or host requests make the next tick do real,
        # externally visible work, so it must neither be skipped over
        # nor advertised as inert.
        if self.alarms or self.host_requests or not self._idle_skip:
            it0.set_us(C.L_TIMER_INTERVAL_US)
            return
        deadline = self._idle_skip_deadline(now)
        if deadline is None:
            it0.set_us(C.L_TIMER_INTERVAL_US)
        else:
            it0.set_deadline(deadline)
        self.sim.inert.add(it0.pending_event)

    def _idle_skip_deadline(self, now: float) -> Optional[float]:
        """Fast-forward over idle L_timer ticks; return the IT0 deadline.

        Called from the fused tail once the work scan proved the MCP
        idle.  Scans the event heap for the earliest event that could
        change anything — skipping events marked inert (replaced timer
        expiries, peers' committed idle ticks) — and absorbs every
        upcoming tick whose
        whole 1.5 us housekeeping window strictly precedes it: their
        invocation counts, busy time and gap statistics are applied
        arithmetically on the same floats the real per-tick path would
        have produced, so the MCP state at the next live event is
        bitwise identical.  Returns the absolute expiry time for the
        first tick that must run for real, or ``None`` when no tick can
        be skipped (then the caller re-arms periodically as usual).

        Correctness leans on one invariant: between now and the chosen
        deadline the heap holds only inert events, and an inert event
        never creates work for anyone — so no doorbell, packet, alarm or
        host request can appear inside the skipped span.

        That invariant only holds when idle ticks are pure bookkeeping,
        which is a plain-GM property: subclasses whose L_timer maintains
        externally probed state (FTGM's watchdog and magic word) disable
        the fold via ``_idle_skip``.
        """
        # The external-work horizon spans the whole schedule — on a
        # sharded simulator that is every wheel plus the in-flight
        # channel arrivals, not just this MCP's own queue.
        t_ext = self.sim.earliest_live()
        if t_ext == float("inf"):
            # Only inert events left: without a live horizon the skip is
            # unbounded, so keep ticking periodically.
            return None
        interval = C.L_TIMER_INTERVAL_US
        # Exact replay of the re-arm chain: the tick after a tick at T
        # lands at (T + 1.5) + interval, charged from the tail.
        tick = now + interval
        skipped = 0
        last = self.l_timer_last
        max_gap = self.l_timer_max_gap
        while tick + 1.5 < t_ext:
            gap = tick - last
            if gap > max_gap:
                max_gap = gap
            last = tick
            skipped += 1
            tick = (tick + 1.5) + interval
        if not skipped:
            return None
        self.l_timer_invocations += skipped
        self.busy_time += 1.5 * skipped
        self.ticks_absorbed += skipped
        self.l_timer_last = last
        self.l_timer_max_gap = max_gap
        return tick

    # -- lazy node parking ---------------------------------------------------------

    def _quiescent(self) -> bool:
        """No stream holds state a timer tick could ever act on.

        The fused tail already proved nothing is runnable *now*; this
        asks the stronger question — could anything become runnable
        without an external touch?  An armed retransmit deadline or
        unacked window needs future ticks to fire it; partial
        reassemblies are kept conservative (their ACK/NACK bookkeeping
        rides the tick cadence).  All external touches (packet arrival,
        doorbell, host request) go through set_bits/_kick and wake a
        parked MCP themselves.
        """
        for stream in self.tx_streams.values():
            if stream.deadline is not None or stream.has_unacked() \
                    or stream.has_sendable():
                return False
        if self.rx_frags:
            return False
        return True

    def _park(self, now: float) -> None:
        """Quiesce off the wheel: no IT0, nothing scheduled at all.

        Called from the fused tail's idle branch, so IT0 has expired
        and was not re-armed; the watchdog hook stops IT1 (a parked
        FTGM node must not trip its own watchdog — the FTD only probes
        after an IT1 FATAL, so a stopped IT1 also parks the daemon).
        ``now`` is the housekeeping window end; the next tick would
        have started one interval later, which anchors the replay chain.
        """
        self._park_timers()
        self._parked = True
        self._park_prev_end = now
        self._park_next_tick = now + C.L_TIMER_INTERVAL_US
        self.tracer.emit(now, self.name, "mcp_parked")

    def _unpark(self) -> None:
        """Replay the parked span and restore the timer chain.

        Runs inside the first ``_kick`` after parking, before dispatch
        wakes.  Missed whole windows (tick start T, busy span
        [T, T+1.5]) are applied arithmetically on the exact floats the
        live chain would have produced; the straddled window — if the
        wake lands inside one — is split exactly like the live fused
        path: front-half stats now, tail callback at the window end,
        kicks suppressed in between.  A wake landing exactly on a tick
        start raw-sets IT0_EXPIRED so dispatch takes the real L_timer
        path (the live ordering: the expiry event predates the waking
        event's kick).
        """
        self._parked = False
        now = self.sim._now
        interval = C.L_TIMER_INTERVAL_US
        tick = self._park_next_tick
        prev_end = self._park_prev_end
        last = self.l_timer_last
        max_gap = self.l_timer_max_gap
        replayed = 0
        while tick + 1.5 <= now:
            gap = tick - last
            if gap > max_gap:
                max_gap = gap
            last = tick
            replayed += 1
            prev_end = tick + 1.5
            tick = prev_end + interval
        if replayed:
            self.l_timer_invocations += replayed
            self.busy_time += 1.5 * replayed
            self.ticks_parked += replayed
            self.l_timer_last = last
            self.l_timer_max_gap = max_gap
            self._replay_windows(replayed)
        it0 = self.nic.timers[0]
        status = self.nic.status
        if tick > now:
            # Between windows: arm IT0 on the exact chain float.  The
            # plain-GM fold marks its committed expiries inert (pure
            # bookkeeping ticks); FTGM ticks stay live.
            it0.set_deadline(tick)
            if self._idle_skip:
                self.sim.inert.add(it0.pending_event)
        elif tick == now:
            # IT0 is not in the IMR, so expiry only sets the ISR bit —
            # raw-set it and let dispatch run the real _l_timer.
            status.isr |= IsrBits.IT0_EXPIRED
        else:
            # Mid-window wake (tick < now < tick + 1.5): the live fused
            # front already ran at ``tick``; apply it and schedule the
            # tail at the window end.
            gap = tick - self.l_timer_last
            if gap > self.l_timer_max_gap:
                self.l_timer_max_gap = gap
            self.l_timer_last = tick
            self.l_timer_invocations += 1
            self.ticks_parked += 1
            status.clear_bits(IsrBits.HOST_REQUEST)
            self.busy_time += 1.5
            self._fuse_end = tick + 1.5
            tail = self.sim.timeout_at(tick + 1.5)
            tail.callbacks.append(self._fused_tail_cb)
        self._unpark_timers(prev_end)
        self.tracer.emit(now, self.name, "mcp_unparked",
                         replayed=replayed)

    def settle_idle(self) -> None:
        """Replay a parked MCP up to the current instant (observation).

        Harvest and outcome extraction read counters directly instead
        of touching the MCP through its host interface; calling this
        first brings a parked node's statistics to what the always-
        ticking execution would show now.  A no-op when not parked.
        """
        if self._parked:
            self._kick()

    def sample_stats(self, now: float) -> dict:
        """Read-only counter projection at ``now`` (never wakes a node).

        The continuous sampler reads counters mid-run, where
        ``settle_idle`` would be wrong: replaying the parked span into
        the live counters changes every later fold, so a sampled run
        would diverge from an unsampled one.  Instead, project what the
        always-ticking execution would show at ``now`` over the frozen
        park state — the same window arithmetic as ``_unpark``, applied
        to local copies.
        """
        invocations = self.l_timer_invocations
        parked = self.ticks_parked
        if self._parked:
            whole, mid = self._parked_projection(now)
            invocations += whole + mid
            parked += whole + mid
        return {"l_timer_invocations": invocations,
                "ticks_parked": parked}

    def _parked_projection(self, now: float) -> Tuple[int, int]:
        """(whole windows elapsed, straddled window) while parked at ``now``.

        Mirrors ``_unpark``'s replay chain — tick starts at
        ``_park_next_tick``, each window spans ``[T, T + 1.5]`` and the
        next starts one interval after the end — computed closed-form
        with a float-correction loop so the count lands on the exact
        floats the live chain produces.
        """
        interval = C.L_TIMER_INTERVAL_US
        span = interval + 1.5
        tick = self._park_next_tick
        whole = 0
        if tick + 1.5 <= now:
            whole = int((now - 1.5 - tick) // span) + 1
            tick += whole * span
            # Float rounding can land the closed form one window short
            # (or long) of the exact chain; settle on the replay's own
            # predicate.
            while tick + 1.5 <= now:
                whole += 1
                tick += span
            while whole and tick - span + 1.5 > now:
                whole -= 1
                tick -= span
        mid = 1 if tick < now else 0
        return whole, mid

    def _park_timers(self) -> None:
        """FTGM hook: stop the watchdog timer across the parked span."""

    def _replay_windows(self, count: int) -> None:
        """FTGM hook: per-window L_timer side effects (watchdog arms)."""

    def _unpark_timers(self, prev_window_end: float) -> None:
        """FTGM hook: restore the watchdog deadline after a parked span."""

    def _handle_host_request(self, request: Tuple) -> Generator:
        kind = request[0]
        if kind == "open":
            _, port_id, done = request
            self.ports[port_id] = McpPort(port_id)
            yield from self._charge(2.0, "port-open")
            done.succeed(port_id)
        elif kind == "reopen":
            _, port_id, done = request
            port = self.ports.get(port_id)
            if port is None:
                port = self.ports[port_id] = McpPort(port_id, open_=False)
            port.open = True
            yield from self._charge(2.0, "port-reopen")
            done.succeed(port_id)
        elif kind == "close":
            _, port_id, done = request
            self.ports.pop(port_id, None)
            self.event_sinks.pop(port_id, None)
            yield from self._charge(2.0, "port-close")
            done.succeed(port_id)
        elif kind == "alarm":
            _, when, port_id, context = request
            self.alarms.append((when, port_id, context))
        elif kind == "pause":
            # "request for pausing the LANai" — L_timer is exactly where
            # GM services it (§4.2 lists it among L_timer's duties).
            _, done = request
            self.paused = True
            yield from self._charge(1.0, "pause")
            done.succeed(True)
        elif kind == "resume":
            _, done = request
            self.paused = False
            yield from self._charge(1.0, "resume")
            done.succeed(True)
        elif kind == "restore_rx":
            # FTGM recovery: host reports the last seq it saw per stream.
            _, key, last_seq = request
            stream = self._rx_stream(tuple(key))
            stream.restore(last_seq)
            yield from self._charge(1.0, "restore-rx")
        else:
            self.tracer.emit(self.sim.now, self.name, "bad_host_request",
                             request_kind=kind)

    # -- doorbells -------------------------------------------------------------------

    def _handle_doorbell(self, bell: Tuple) -> Generator:
        kind, token = bell
        if kind == "send":
            stream = self._tx_stream(self.tx_stream_key(token))
            self.assign_seq_base(stream, token)
            stream.admit(token)
            if not stream.has_unacked():
                # A fresh conversation starts its stall clock now.
                stream.note_progress(self.sim.now)
            yield from self._charge(0.4, "token-admit")
        elif kind == "recv":
            port = self.ports.get(token.port)
            if port is None:
                # Recovery re-posts tokens before the reopen request is
                # serviced; queue them on a closed port placeholder.
                port = self.ports[token.port] = McpPort(token.port,
                                                        open_=False)
            port.recv_tokens.append(token)
            yield from self._charge(0.3, "recv-token")

    def _tx_stream(self, key: StreamKey) -> TxStream:
        stream = self.tx_streams.get(key)
        if stream is None:
            stream = self.tx_streams[key] = TxStream(key)
        return stream

    def _rx_stream(self, key: StreamKey) -> RxStream:
        stream = self.rx_streams.get(key)
        if stream is None:
            stream = self.rx_streams[key] = RxStream(key)
        return stream

    # -- send path ---------------------------------------------------------------

    def _send_fragment(self, stream: TxStream) -> Generator:
        job = stream.next_to_send()
        if job is None:
            return
        record = stream.msgs.get(job.msg_id)
        if record is None:
            return
        token = record.token
        if self.interpreted:
            ok = yield from self._send_chunk_interpreted(token, job)
        else:
            ok = yield from self._send_chunk_native(token, job)
        if not ok:
            return
        self.stats["packets_sent"] += 1
        if stream.deadline is None:
            self._arm_stream_timer(stream)

    def _send_chunk_native(self, token: SendToken, job) -> Generator:
        yield from self._charge(
            C.LANAI_SEND_PER_PACKET_US + self.lanai_send_extra_us,
            "send", bucket="send")
        result = yield from self.nic.dma.read_from_host(
            token.host_addr + job.offset, job.length)
        if not result.ok:
            yield from self._fail_send(token, "dma:%s" % result.error)
            return False
        pkt = self._build_data_packet(token, job, result.payload)
        if pkt is None:
            yield from self._fail_send(token, "no-route")
            return False
        self._transmit(pkt.seal())
        return True

    def _build_data_packet(self, token: SendToken, job,
                           payload: Payload) -> Optional[Packet]:
        route = self.routing_table.get(token.dest_node)
        if route is None and token.dest_node != self.node_id:
            return None
        pkt = Packet(
            ptype=PacketType.DATA,
            src_node=self.node_id,
            dest_node=token.dest_node,
            route=list(route or []),
            src_port=token.src_port,
            dst_port=token.dest_port,
            seq=job.seq,
            msg_id=token.msg_id,
            frag_offset=job.offset,
            msg_total=token.size,
            declared_len=job.length,
            priority=token.priority,
            payload=payload,
        )
        pkt.hdr_csum = pkt.header_checksum()
        return pkt

    def _fail_send(self, token: SendToken, reason: str) -> Generator:
        self.stats["sends_failed"] += 1
        self.tracer.emit(self.sim.now, self.name, "send_failed",
                         msg_id=token.msg_id, reason=reason)
        stream = self.tx_streams.get(self.tx_stream_key(token))
        if stream is not None:
            stream.msgs.pop(token.msg_id, None)
            if not stream.msgs:
                stream.deadline = None
                stream.send_cursor = stream.acked_upto + 1
        yield from self._post_event(GmEvent(
            EventType.SEND_ERROR, token.src_port,
            msg_id=token.msg_id, error=reason, context=token.context))

    def _transmit(self, pkt: Packet) -> None:
        """Hand a packet to the packet-interface engine (non-blocking).

        A packet addressed to this very interface loops back through the
        receive ring without touching the wire — GM supports self-sends.
        """
        if pkt.dest_node == self.node_id:
            self.nic.deliver_packet(pkt)
            return
        self.sim.spawn(self._tx_engine(pkt), name="%s.tx" % self.name)

    def _tx_engine(self, pkt: Packet) -> Generator:
        yield from self.nic.send_packet(pkt)

    # -- receive path ----------------------------------------------------------

    def _handle_packet(self, pkt: Packet) -> Generator:
        if self.mapper_agent.handle(pkt):
            yield from self._charge(1.0, "mapper")
            return
        if pkt.ptype == PacketType.DATA:
            yield from self._handle_data(pkt)
        elif pkt.ptype == PacketType.ACK:
            yield from self._handle_ack(pkt)
        elif pkt.ptype == PacketType.NACK:
            yield from self._handle_nack(pkt)
        elif pkt.ptype == PacketType.HEARTBEAT:
            # Peer-watchdog probe: answer if (and only if) we are alive
            # enough to dispatch — which is the definition being tested.
            yield from self._charge(0.4, "heartbeat")
            route = self.routing_table.get(pkt.src_node)
            if route is not None:
                reply = Packet(ptype=PacketType.HEARTBEAT_REPLY,
                               src_node=self.node_id,
                               dest_node=pkt.src_node,
                               route=list(route), seq=pkt.seq)
                self._transmit(reply.seal())
        elif pkt.ptype == PacketType.HEARTBEAT_REPLY:
            if self.heartbeat_listener is not None:
                self.heartbeat_listener(pkt)
        else:
            self.stats["malformed_drops"] += 1
            yield from self._charge(0.3, "drop")

    def _handle_data(self, pkt: Packet) -> Generator:
        yield from self._charge(
            C.LANAI_RECV_PER_PACKET_US + self.lanai_recv_extra_us,
            "recv", bucket="recv")
        self.stats["packets_received"] += 1
        if not pkt.crc_ok():
            # Wire corruption: the link-level CRC catches it.  Note that
            # the CRC is computed by the *sending* hardware after the
            # firmware built the packet, so firmware corruption produces
            # a consistent CRC and sails through this check — exactly the
            # real failure mode (GM's CRC protects the wire, not the
            # sender's brain).
            self.stats["crc_drops"] += 1
            self.tracer.emit(self.sim.now, self.name, "crc_drop",
                             packet=pkt.describe())
            return
        if pkt.dest_node != self.node_id or pkt.effective_len() \
                != pkt.payload.size:
            self.stats["malformed_drops"] += 1
            return
        port = self.ports.get(pkt.dst_port)
        if port is None or not port.open:
            self.stats["malformed_drops"] += 1
            return

        key = self.rx_stream_key(pkt)
        stream = self._rx_stream(key)
        verdict = stream.classify(pkt.seq)
        if verdict != "expected":
            # Any out-of-sequence packet is answered with a NACK carrying
            # the expected sequence number ("the receiver would reply by
            # sending a NACK with the expected sequence number").  For a
            # live sender this doubles as a cumulative ACK of everything
            # below `expected`; for a naively restarted sender it is the
            # very reply that triggers the Figure 4 duplicate.  NACKs are
            # rate-limited per stream so a misbehaving sender cannot
            # provoke a NACK storm at wire rate.
            if verdict == "stale":
                self.stats["stale_packets"] += 1
            now = self.sim.now
            if now - stream.last_nack_at >= C.NACK_MIN_INTERVAL_US:
                stream.last_nack_at = now
                self._send_control(PacketType.NACK, pkt,
                                   stream.expected_seq)
            return

        # In-sequence data.
        if pkt.frag_offset == 0:
            token = self._match_recv_token(port, pkt.msg_total, pkt.priority)
            if token is None:
                self.stats["no_token_drops"] += 1
                return  # no buffer: silent drop, sender will retransmit
            stream.open_msg_id = pkt.msg_id
            stream.open_token = token
            stream.received_bytes = 0
            self.rx_frags[key] = []
        else:
            if stream.open_msg_id != pkt.msg_id or stream.open_token is None:
                # Mid-message fragment without its head (we likely dropped
                # the head for lack of a buffer): do not advance.
                self.stats["no_token_drops"] += 1
                return

        stream.accept(pkt.seq)
        token = stream.open_token
        self.rx_frags[key].append(pkt.payload)
        is_final = pkt.frag_offset + pkt.payload.size >= pkt.msg_total

        if not self.ack_after_dma(is_final):
            # Plain-GM commit point: ACK as soon as the packet is valid —
            # *before* the DMA into the user buffer (the Fig. 5 window).
            # FTGM also takes this branch for non-final fragments, "not
            # waiting for the DMA to be complete, thus allowing several
            # packets of the same message to be in-flight".
            self._send_control(PacketType.ACK, pkt, stream.last_acked)
            if self.hang_after_ack_before_dma:
                # Fig. 5 test hook: crash after ACK, before the DMA.
                self.die("injected: after-ack-before-dma")
                return

        result = yield from self.nic.dma.write_to_host(
            token.host_addr + pkt.frag_offset, pkt.payload)
        if not result.ok:
            self.tracer.emit(self.sim.now, self.name, "recv_dma_failed",
                             error=result.error)
            return
        stream.received_bytes += pkt.payload.size

        if is_final:
            # Post the event *before* the (delayed) final ACK: the event
            # DMA is what updates the host's ACK-table copy, so ordering
            # it first guarantees the host copy covers everything the
            # sender may believe completed — the invariant per-stream
            # recovery rests on (PROTOCOL.md, R1).
            yield from self._deliver_message(key, stream, port, pkt)

        if self.ack_after_dma(is_final):
            # FTGM commit point: the final fragment of a message ACKs
            # only after its DMA completed.
            if self.hang_after_dma_before_ack:
                # FTGM counterpart of the Fig. 5 window: with the moved
                # commit point a crash here loses only the (unACKed)
                # message, which the sender retransmits after recovery.
                self.die("injected: after-dma-before-ack")
                return
            self._send_control(PacketType.ACK, pkt, stream.last_acked)

    def _deliver_message(self, key: StreamKey, stream: RxStream,
                         port: McpPort, pkt: Packet) -> Generator:
        token = stream.open_token
        frags = self.rx_frags.pop(key, [])
        full = Payload.concat(frags) if frags else Payload.from_bytes(b"")
        region = self.nic.host.region_by_id(token.region_id)
        if region is not None:
            region.payload = full
        stream.open_msg_id = None
        stream.open_token = None
        stream.received_bytes = 0
        self.stats["messages_delivered"] += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.name, "flow",
                             _ph="n", _cat="msg", _id=pkt.msg_id,
                             name="message", node=self.node_id)
        yield from self._post_event(GmEvent(
            EventType.RECEIVED, port.port_id,
            sender_node=pkt.src_node, sender_port=pkt.src_port,
            payload=full, size=pkt.msg_total, region_id=token.region_id,
            recv_token_id=token.token_id,
            seq=self.event_seq_field(stream)))

    def _match_recv_token(self, port: McpPort, size: int,
                          priority: int) -> Optional[RecvToken]:
        for i, token in enumerate(port.recv_tokens):
            if token.matches(size, priority):
                return port.recv_tokens.pop(i)
        return None

    def _send_control(self, ptype: int, data_pkt: Packet,
                      seq_value: int) -> None:
        """ACK/NACK back to the sender of ``data_pkt``."""
        route = self.routing_table.get(data_pkt.src_node)
        if route is None:
            return
        ctrl = Packet(
            ptype=ptype,
            src_node=self.node_id,
            dest_node=data_pkt.src_node,
            route=list(route),
            src_port=data_pkt.src_port,   # identifies the sender's stream
            dst_port=data_pkt.dst_port,
            ack_seq=seq_value,
        )
        ctrl.hdr_csum = ctrl.header_checksum()
        self.stats["acks_sent" if ptype == PacketType.ACK
                   else "nacks_sent"] += 1
        self._transmit(ctrl.seal())

    # -- ACK / NACK / timeout at the sender --------------------------------------

    def _handle_ack(self, pkt: Packet) -> Generator:
        if self.hang_before_ack_processing:
            # Fig. 4 test hook: "a sending node crashes when an ACK is in
            # transit" — the ACK arrived but is never processed.
            self.die("injected: ack-in-transit")
            return
        yield from self._charge(C.LANAI_ACK_PROCESS_US, "ack", bucket="send")
        stream = self.tx_streams.get(self.ack_stream_key(pkt))
        if stream is None:
            return
        before = stream.acked_upto
        completed = stream.on_ack(pkt.ack_seq)
        if stream.acked_upto > before:
            stream.note_progress(self.sim.now)
        yield from self._complete_records(stream, completed)

    def _handle_nack(self, pkt: Packet) -> Generator:
        yield from self._charge(C.LANAI_ACK_PROCESS_US, "nack", bucket="send")
        stream = self.tx_streams.get(self.ack_stream_key(pkt))
        if stream is None:
            return
        completed = stream.on_nack(pkt.ack_seq)
        if completed or stream.progressed_via_nack:
            stream.note_progress(self.sim.now)
        yield from self._complete_records(stream, completed)
        if stream.stalled(self.sim.now):
            yield from self._fail_stream(stream)
        self._kick()

    def _complete_records(self, stream: TxStream, completed) -> Generator:
        for record in completed:
            yield from self._post_event(GmEvent(
                EventType.SENT, record.token.src_port,
                msg_id=record.token.msg_id, context=record.token.context,
                seq=record.seq_last))
        if stream.has_unacked():
            self._arm_stream_timer(stream)
        else:
            stream.deadline = None

    def _handle_timeout(self, stream: TxStream) -> Generator:
        stream.deadline = None
        if not stream.has_unacked():
            return
        self.stats["retransmit_rounds"] += 1
        if stream.stalled(self.sim.now):
            yield from self._fail_stream(stream)
        else:
            stream.on_timeout()
            yield from self._charge(0.5, "retransmit")
            self._arm_stream_timer(stream)

    def _fail_stream(self, stream: TxStream) -> Generator:
        """No receiver progress within the resend window: error out
        every queued send (GM's time-based send failure)."""
        failed = stream.fail_all()
        for record in failed:
            yield from self._post_event(GmEvent(
                EventType.SEND_ERROR, record.token.src_port,
                msg_id=record.token.msg_id, error="send-timeout",
                context=record.token.context))
            self.stats["sends_failed"] += 1
        stream.note_progress(self.sim.now)  # fresh window for new sends

    def _arm_stream_timer(self, stream: TxStream) -> None:
        stream.deadline = self.sim.now + stream.rto
        timer = self.sim.timeout(stream.rto)
        timer.callbacks.append(lambda _ev: self._kick())

    # -- event posting -----------------------------------------------------------

    def _post_event(self, event: GmEvent) -> Generator:
        sink = self.event_sinks.get(event.port)
        if sink is None:
            return
        yield from self._charge(C.LANAI_EVENT_POST_US, "event")
        yield from self.nic.pci.transfer(C.EVENT_RECORD_BYTES)
        event.posted_at = self.sim.now
        sink(event)

    # -- interpreted send_chunk -----------------------------------------------------

    def _send_chunk_interpreted(self, token: SendToken, job) -> Generator:
        """Run the real firmware for this fragment on the interpreter."""
        # Dispatch-side token parse / bookkeeping cost (outside the
        # routine itself).
        yield from self._charge(1.0, "send-dispatch", bucket="send")
        base = fw.TOKEN_BASE
        sram = self.nic.sram
        fields = fw.TOKEN_FIELDS
        sram.write_word(base + fields["host_addr"],
                        token.host_addr + job.offset)
        sram.write_word(base + fields["sram_addr"], 0x10000)
        sram.write_word(base + fields["length"], job.length)
        sram.write_word(base + fields["dest_node"], token.dest_node)
        sram.write_word(base + fields["seq"], job.seq)
        sram.write_word(base + fields["ports"],
                        (token.src_port << 8) | token.dest_port)
        sram.write_word(base + fields["type"], PacketType.DATA)
        sram.write_word(base + fields["msg_id"], token.msg_id)
        sram.write_word(base + fields["offset"], job.offset)
        sram.write_word(base + fields["total"], token.size)
        sram.write_word(base + fields["priority"], token.priority)
        sram.write_word(base + fields["result"], 0xFFFFFFFF)

        self.glue.begin_invocation()
        # Fuel bounds runaway loops; the budget corresponds to ~2.3ms of
        # LANai time — anything longer is indistinguishable from a hang.
        outcome = yield from self.cpu.run_routine(
            self.firmware.entry_send_chunk, fuel=300_000)
        if outcome.status == "hung":
            self.die("lanai-hang:%s" % outcome.reason)
            return False
        if outcome.status == "restart":
            self._mcp_restart()
            return False
        result = sram.read_word(base + fields["result"])
        if result != 1:
            yield from self._fail_send(token, "send-chunk-error")
            return False
        return True

    def _mcp_restart(self) -> None:
        """Control reached the reset vector: the MCP re-initializes.

        All LANai-side protocol state is lost but the processor lives;
        Table 1 calls this outcome "MCP Restart".
        """
        self.stats["mcp_restarts"] += 1
        self.tracer.emit(self.sim.now, self.name, "mcp_restart")
        self.tx_streams.clear()
        self.rx_streams.clear()
        self.rx_frags.clear()
        self.ports.clear()
        self.doorbells.drain()
        self.host_requests = []
        self.nic.timers[0].set_us(C.L_TIMER_INTERVAL_US)

    # -- accounting helpers -----------------------------------------------------------

    def _charge(self, cost_us: float, label: str,
                bucket: Optional[str] = None) -> Generator:
        self.busy_time += cost_us
        if bucket == "send":
            self.send_busy_time += cost_us
        elif bucket == "recv":
            self.recv_busy_time += cost_us
        yield self.sim.timeout(cost_us)

    def _install_routes(self, table: Dict[int, List[int]]) -> None:
        reinstall = bool(self.routing_table) and self.running
        self.routing_table = dict(table)
        if self.on_routes_installed is not None:
            self.on_routes_installed(dict(table))
        self.tracer.emit(self.sim.now, self.name, "routes_installed",
                         count=len(table))
        if reinstall:
            # A mapper re-run replaced a live table (netfault reroute):
            # tell every open port so the library can replay in-flight
            # state over the new routes.  The boot-time first install
            # (empty previous table) announces nothing.
            self.tracer.emit(self.sim.now, self.name,
                             "route_change_announced", count=len(table))
            self.sim.spawn(self._announce_route_change(),
                           name="%s.routechg" % self.name)

    def _announce_route_change(self) -> Generator:
        for port_id in sorted(self.ports):
            port = self.ports.get(port_id)
            if port is None or not port.open:
                continue
            yield from self._post_event(GmEvent(
                EventType.ROUTE_CHANGED, port_id))

    def install_routes_from_host(self, table: Dict[int, List[int]]) -> None:
        """FTD recovery path: restore the routing table from host copy.

        Deliberately does *not* announce ROUTE_CHANGED — the card-reset
        flow posts FAULT_DETECTED instead, and the two recovery paths
        must stay distinguishable to the library.
        """
        self.routing_table = dict(table)
