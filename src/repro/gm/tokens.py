"""GM's implicit flow-control tokens.

"Both sends and receives are regulated by implicit tokens, which
represent space allocated to the user process in various internal GM
queues."  A process relinquishes a send token on ``gm_send`` and gets it
back when the send's callback fires; it relinquishes a receive token
with ``gm_provide_receive_buffer`` and gets it back when ``gm_receive``
returns the matching message.

FTGM keeps *shadow copies* of exactly these objects in host memory
(:mod:`repro.ftgm.shadow`); that is the paper's "just the right amount of
state" for recovery, so the fields here are the recovery contract.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["SendToken", "RecvToken"]

# Fallback id source for tokens constructed directly (tests, tools).
# Simulation code must pass explicit ids drawn from ``Simulator.ids``:
# a process-global counter would leak earlier runs' token volume into
# the current simulation (the values end up in the SRAM token block the
# interpreted firmware reads, so they can change what a bit-flipped
# ``send_chunk`` does), destroying run-for-run determinism.
_token_ids = itertools.count(1)


@dataclass
class SendToken:
    """Everything the LANai needs to transmit one message.

    "A send token consists of information about the location, size and
    priority of the send buffer and the intended destination for the
    message."  ``seq_base`` is FTGM's addition: the host-generated first
    sequence number for the message's fragments (None under plain GM,
    where the MCP owns sequence numbers).
    """

    src_port: int
    dest_node: int
    dest_port: int
    region_id: int          # pinned host buffer holding the message
    host_addr: int
    size: int
    priority: int = 0
    callback: Optional[Callable] = None
    context: object = None
    seq_base: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_token_ids))

    def fragment_count(self, mtu: int) -> int:
        if self.size == 0:
            return 1
        return -(-self.size // mtu)

    def ckpt_state(self) -> dict:
        """Snapshot contract: wire-relevant token fields."""
        return {
            "kind": "send",
            "msg_id": self.msg_id,
            "src_port": self.src_port,
            "dest_node": self.dest_node,
            "dest_port": self.dest_port,
            "size": self.size,
            "priority": self.priority,
            "seq_base": self.seq_base,
        }


@dataclass
class RecvToken:
    """A receive buffer the process has surrendered to the LANai.

    "A receive token contains information about the receive buffer such
    as its size and the priority of the message that it can accept."
    """

    port: int
    region_id: int
    host_addr: int
    size: int
    priority: int = 0
    token_id: int = field(default_factory=lambda: next(_token_ids))

    def matches(self, msg_size: int, priority: int) -> bool:
        return self.size >= msg_size and self.priority == priority

    def ckpt_state(self) -> dict:
        """Snapshot contract: wire-relevant token fields."""
        return {
            "kind": "recv",
            "token_id": self.token_id,
            "port": self.port,
            "size": self.size,
            "priority": self.priority,
        }
