"""The GM host device driver.

The driver runs in the host OS: it loads the MCP into LANai SRAM, maps
I/O, services interrupts, opens and closes ports, and keeps host-side
copies of what the mapper installed (the FTD reads those copies during
recovery).  Plain GM's driver has no watchdog handling — that arrives
with the FTGM subclass.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..errors import GmError
from ..hw.host import Host
from ..hw.nic import Nic
from ..sim import Simulator, Tracer
from . import constants as C
from .library import Port
from .mcp import Mcp

__all__ = ["GmDriver"]


class GmDriver:
    """One host's GM driver instance, bound to one NIC."""

    mcp_class = Mcp
    port_class = Port

    def __init__(self, sim: Simulator, host: Host, nic: Nic,
                 tracer: Optional[Tracer] = None, interpreted: bool = False):
        self.sim = sim
        self.host = host
        self.nic = nic
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.trace_source = "driver%d" % nic.node_id
        self.interpreted = interpreted
        self.mcp: Optional[Mcp] = None
        self.ports: Dict[int, Port] = {}
        self.host_routes: Dict[int, List[int]] = {}  # host copy of routes
        host.register_irq_handler(Nic.IRQ_LINE, self._irq_handler)

    # -- MCP lifecycle ------------------------------------------------------------

    def load_mcp(self) -> Mcp:
        """Load and start the control program (driver-load time path)."""
        if self.mcp is not None and self.mcp.running:
            raise GmError("MCP already loaded and running")
        mcp = self.mcp_class(self.sim, self.nic, self.nic.node_id,
                             self.tracer, interpreted=self.interpreted)
        mcp.on_routes_installed = self._routes_installed
        # The builder stamps ``lazy_nodes`` on the driver once, so MCP
        # reloads (FTGM recovery) re-apply the same execution mode.
        mcp.set_lazy(getattr(self, "lazy_nodes", False))
        self.mcp = mcp
        mcp.start()
        self._after_mcp_start(mcp)
        return mcp

    def _after_mcp_start(self, mcp: Mcp) -> None:
        """FTGM hook: enable the watchdog IMR bit, arm IT1."""

    def _routes_installed(self, table: Dict[int, List[int]]) -> None:
        """The mapper configured this interface; keep the host copy."""
        self.host_routes = dict(table)
        self.tracer.emit(self.sim.now, self.trace_source,
                         "host_routes_saved", count=len(table))

    def _irq_handler(self, cause) -> None:
        """Plain GM has nothing to do for spare-timer interrupts."""

    # -- ports -----------------------------------------------------------------------

    def open_port(self, port_id: Optional[int] = None) -> Generator:
        """Process: open a port (request serviced by the MCP's L_timer)."""
        if self.mcp is None or not self.mcp.running:
            raise GmError("no MCP loaded")
        if port_id is None:
            port_id = self._free_port_id()
        elif port_id in self.ports:
            raise GmError("port %d already open" % port_id)
        if not 0 <= port_id < C.NUM_PORTS:
            raise GmError("port id out of range (GM allows %d ports)"
                          % C.NUM_PORTS)
        done = self.sim.event()
        self.mcp.host_request(("open", port_id, done))
        yield done
        port = self.port_class(self.sim, self.host, self, self.mcp, port_id)
        self.ports[port_id] = port
        self.mcp.event_sinks[port_id] = port._event_sink
        return port

    def ckpt_state(self) -> dict:
        """Snapshot contract: host-side driver state (MCP captured apart)."""
        return {
            "trace_source": self.trace_source,
            "interpreted": self.interpreted,
            "ports": sorted(self.ports),
            "host_routes": {str(dest): list(route) for dest, route
                            in sorted(self.host_routes.items())},
        }

    def _free_port_id(self) -> int:
        for candidate in range(C.NUM_PORTS):
            if candidate not in self.ports:
                return candidate
        raise GmError("all %d ports are open" % C.NUM_PORTS)

    def _port_closed(self, port: Port) -> None:
        self.ports.pop(port.port_id, None)
        self.host.page_hash_table.remove_port(port.port_id)
