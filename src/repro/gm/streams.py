"""Go-Back-N stream state.

GM guarantees reliable in-order delivery per *connection* using
cumulative ACKs, NACK-with-expected-seq and sender rewind ("a version of
the Go-Back-N protocol").  A **stream** is one sequence-number space:

* plain GM: one stream per remote node (all ports multiplexed) — the
  Figure 6(a) structure;
* FTGM: one stream per (remote node, local port) — Figure 6(b) — so the
  *host* can generate sequence numbers without cross-process
  synchronization.

The classes here are pure protocol state, independent of simulation
plumbing, so the Go-Back-N invariants are unit- and property-testable in
isolation.  The MCP (:mod:`repro.gm.mcp`) drives them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.packet import GM_MTU
from .constants import (
    GBN_WINDOW,
    RETRANSMIT_BACKOFF,
    RETRANSMIT_TIMEOUT_CAP_US,
    RETRANSMIT_TIMEOUT_US,
    SEND_STALL_TIMEOUT_US,
)
from .tokens import RecvToken, SendToken

__all__ = ["FragJob", "MsgRecord", "TxStream", "RxStream", "StreamKey"]

# (remote_node,) under GM; (remote_node, local_port) under FTGM.
StreamKey = Tuple[int, ...]


@dataclass
class FragJob:
    """One fragment awaiting (re)transmission."""

    msg_id: int
    seq: int
    offset: int
    length: int


@dataclass
class MsgRecord:
    """Sender-side record of one in-flight message."""

    token: SendToken
    seq_base: int
    nfrags: int
    acked_frags: int = 0
    failed: bool = False

    @property
    def seq_last(self) -> int:
        return self.seq_base + self.nfrags - 1

    @property
    def complete(self) -> bool:
        return self.acked_frags >= self.nfrags

    def fragment(self, index: int, mtu: int = GM_MTU) -> FragJob:
        offset = index * mtu
        length = min(mtu, self.token.size - offset) if self.token.size else 0
        return FragJob(self.token.msg_id, self.seq_base + index, offset,
                       length)


class TxStream:
    """Sender side of one sequence-number stream."""

    def __init__(self, key: StreamKey, window: int = GBN_WINDOW):
        self.key = key
        self.window = window
        self.next_seq = 0            # next sequence number to assign
        self.send_cursor = 0         # next sequence number to transmit
        self.msgs: "OrderedDict[int, MsgRecord]" = OrderedDict()
        self.acked_upto = -1         # highest cumulatively ACKed seq
        self.rto = RETRANSMIT_TIMEOUT_US
        self.retries = 0              # rounds since last forward progress
        self.deadline: Optional[float] = None  # absolute retransmit deadline
        self._last_nack_expected = -1
        self.progressed_via_nack = False
        # GM's resend budget is time-based: the stream fails once the
        # receiver has made no forward progress for SEND_STALL_TIMEOUT.
        self.last_progress_at = 0.0

    # -- admission ----------------------------------------------------------

    def admit(self, token: SendToken, mtu: int = GM_MTU) -> MsgRecord:
        """Queue a message; honours a host-assigned seq_base (FTGM)."""
        nfrags = token.fragment_count(mtu)
        if token.seq_base is not None:
            if token.seq_base != self.next_seq:
                # The host's stream generator and the MCP disagree; trust
                # the host (it survives MCP reloads — that is the point).
                if not self.msgs and token.seq_base > self.acked_upto + 1:
                    # Fresh (post-reload) stream adopting host numbering:
                    # the host only re-posts unacknowledged sends, so all
                    # sequence numbers below the earliest one are history
                    # — count them as acknowledged or the window never
                    # opens.
                    self.acked_upto = token.seq_base - 1
                self.next_seq = token.seq_base
                self.send_cursor = max(self.send_cursor, token.seq_base)
            seq_base = token.seq_base
        else:
            seq_base = self.next_seq
        record = MsgRecord(token, seq_base, nfrags)
        self.msgs[token.msg_id] = record
        self.next_seq = seq_base + nfrags
        return record

    # -- transmission bookkeeping ------------------------------------------------

    def in_flight(self) -> int:
        return self.send_cursor - (self.acked_upto + 1)

    def window_open(self) -> bool:
        return self.in_flight() < self.window

    def next_to_send(self, mtu: int = GM_MTU) -> Optional[FragJob]:
        """The fragment at the send cursor, or None if nothing to send.

        If failed messages left a hole in the sequence space, the cursor
        skips to the next live message (the receiver will NACK; the
        retransmit budget eventually fails such sends — see on_nack).
        """
        if not self.window_open():
            return None
        job = self._job_for_seq(self.send_cursor, mtu)
        if job is None:
            upcoming = [r.seq_base for r in self.msgs.values()
                        if not r.failed and r.seq_base > self.send_cursor]
            if not upcoming:
                return None
            self.send_cursor = min(upcoming)
            job = self._job_for_seq(self.send_cursor, mtu)
        self.send_cursor += 1
        return job

    def _job_for_seq(self, seq: int, mtu: int) -> Optional[FragJob]:
        for record in self.msgs.values():
            if record.failed:
                continue
            if record.seq_base <= seq <= record.seq_last:
                return record.fragment(seq - record.seq_base, mtu)
        return None

    # -- feedback ---------------------------------------------------------------

    def on_ack(self, ack_seq: int) -> List[MsgRecord]:
        """Cumulative ACK; returns messages completed by this ACK."""
        if ack_seq <= self.acked_upto:
            return []
        completed = []
        for record in self.msgs.values():
            already = record.acked_frags
            newly = min(ack_seq - record.seq_base + 1, record.nfrags)
            if newly > already:
                record.acked_frags = newly
                if record.complete:
                    completed.append(record)
        self.acked_upto = ack_seq
        self.send_cursor = max(self.send_cursor, ack_seq + 1)
        self.rto = RETRANSMIT_TIMEOUT_US
        self.retries = 0
        for record in completed:
            del self.msgs[record.token.msg_id]
        if not self.msgs:
            self.deadline = None
        return completed

    def on_nack(self, expected: int) -> List[MsgRecord]:
        """NACK carrying the receiver's expected sequence number.

        Two regimes, both 'jump to what the receiver expects':

        * ``expected <= next_seq`` — classic Go-Back-N rewind: resume
          transmission at ``expected``.  The NACK doubles as a cumulative
          ACK of everything below ``expected``, so messages it completes
          are returned (like :meth:`on_ack`).
        * ``expected > next_seq`` — the receiver is *ahead* of us (we
          restarted with fresh state, Figure 4): adopt its numbering and
          relabel every queued message.  Under plain GM this silently
          renumbers already-delivered data — the duplicate-message bug
          the paper fixes.
        """
        if expected > self.next_seq:
            base = expected
            for record in self.msgs.values():
                record.seq_base = base
                record.acked_frags = 0
                base += record.nfrags
            self.next_seq = base
            self.acked_upto = expected - 1
            self.send_cursor = expected
            return []
        completed = []
        if expected > self._last_nack_expected:
            # The receiver's expectation is advancing: it is consuming
            # data (e.g. draining a post-recovery backlog as buffers
            # appear), so the conversation is alive even if nothing
            # completed on our side.
            self.retries = 0
            self.progressed_via_nack = True
        else:
            self.retries += 1
            self.progressed_via_nack = False
        if expected - 1 > self.acked_upto:
            completed = self.on_ack(expected - 1)
        self._last_nack_expected = expected
        self.send_cursor = min(self.send_cursor, expected)
        return completed

    def on_timeout(self) -> None:
        """Retransmit timer fired: back off and rewind (Go-Back-N)."""
        self.retries += 1
        self.rto = min(self.rto * RETRANSMIT_BACKOFF,
                       RETRANSMIT_TIMEOUT_CAP_US)
        # Go-Back-N: rewind the cursor to the first unACKed fragment.
        self.send_cursor = self.acked_upto + 1

    def rewind_for_reroute(self) -> None:
        """Fresh routes were installed: retransmit immediately.

        Rewinds the cursor to the ACK frontier and resets the backoff so
        the first packet over the new path goes out at the base RTO
        instead of waiting out an exponentially backed-off deadline from
        the dead-path era.
        """
        self.send_cursor = self.acked_upto + 1
        self.rto = RETRANSMIT_TIMEOUT_US
        self.retries = 0
        self.deadline = None

    def note_progress(self, now: float) -> None:
        self.last_progress_at = now

    def stalled(self, now: float,
                limit: float = SEND_STALL_TIMEOUT_US) -> bool:
        """True when the receiver has made no forward progress for
        ``limit`` — the time-based failure condition of GM's resend
        machinery."""
        return now - self.last_progress_at > limit

    def fail_all(self) -> List[MsgRecord]:
        """Abort every queued message (send-error path).

        The cursor rewinds to the ACK frontier so later admissions are
        not blocked by phantom in-flight fragments; the resulting hole in
        the sequence space is handled by next_to_send's gap skip.
        """
        failed = [r for r in self.msgs.values() if not r.failed]
        for record in failed:
            record.failed = True
        self.msgs.clear()
        self.send_cursor = self.acked_upto + 1
        self.deadline = None
        self.rto = RETRANSMIT_TIMEOUT_US
        self.retries = 0
        return failed

    def has_unacked(self) -> bool:
        return any(not r.failed for r in self.msgs.values()) \
            and self.acked_upto + 1 < self.send_cursor

    def ckpt_state(self) -> dict:
        """Snapshot contract: complete Go-Back-N sender state."""
        return {
            "key": list(self.key),
            "window": self.window,
            "next_seq": self.next_seq,
            "send_cursor": self.send_cursor,
            "acked_upto": self.acked_upto,
            "rto": self.rto,
            "retries": self.retries,
            "deadline": self.deadline,
            "last_nack_expected": self._last_nack_expected,
            "progressed_via_nack": self.progressed_via_nack,
            "last_progress_at": self.last_progress_at,
            "msgs": [
                {
                    "msg_id": msg_id,
                    "seq_base": record.seq_base,
                    "nfrags": record.nfrags,
                    "acked_frags": record.acked_frags,
                    "failed": record.failed,
                    "size": record.token.size,
                }
                for msg_id, record in self.msgs.items()
            ],
        }

    def has_sendable(self) -> bool:
        if not self.msgs:
            # Idle stream: both sendable conditions below need a live
            # message, so skip the window arithmetic (this is the MCP
            # dispatch loop's hottest poll).
            return False
        if not self.window_open():
            return False
        if self._job_for_seq(self.send_cursor, GM_MTU) is not None:
            return True
        cursor = self.send_cursor
        for record in self.msgs.values():
            if not record.failed and record.seq_base > cursor:
                return True
        return False


class RxStream:
    """Receiver side of one stream: expected seq + reassembly cursor."""

    def __init__(self, key: StreamKey):
        self.key = key
        self.expected_seq = 0
        self.last_acked = -1
        self.last_nack_at = float("-inf")
        # In-progress message reassembly (in-order delivery means at most
        # one message is open per stream).
        self.open_msg_id: Optional[int] = None
        self.open_token: Optional[RecvToken] = None
        self.received_bytes = 0

    def classify(self, seq: int) -> str:
        """'expected' | 'stale' (already delivered) | 'future' (gap)."""
        if seq == self.expected_seq:
            return "expected"
        return "stale" if seq < self.expected_seq else "future"

    def accept(self, seq: int) -> None:
        assert seq == self.expected_seq
        self.expected_seq += 1
        self.last_acked = seq

    def restore(self, last_delivered_seq: int) -> None:
        """FTGM recovery: resume after the last seq the *host* saw."""
        self.expected_seq = last_delivered_seq + 1
        self.last_acked = last_delivered_seq
        self.open_msg_id = None
        self.open_token = None
        self.received_bytes = 0

    def ckpt_state(self) -> dict:
        """Snapshot contract: receive cursor plus open reassembly."""
        return {
            "key": list(self.key),
            "expected_seq": self.expected_seq,
            "last_acked": self.last_acked,
            "last_nack_at": self.last_nack_at,
            "open_msg_id": self.open_msg_id,
            "open_token": self.open_token.token_id
            if self.open_token is not None else None,
            "received_bytes": self.received_bytes,
        }
