"""GM: Myricom's message-passing system for Myrinet (modelled)."""

from . import constants
from .driver import GmDriver
from .events import EventType, GmEvent
from .library import Port, SendOutcome
from .mcp import Mcp, McpPort
from .streams import FragJob, MsgRecord, RxStream, TxStream
from .tokens import RecvToken, SendToken

__all__ = [
    "EventType",
    "FragJob",
    "GmDriver",
    "GmEvent",
    "Mcp",
    "McpPort",
    "MsgRecord",
    "Port",
    "RecvToken",
    "RxStream",
    "SendOutcome",
    "SendToken",
    "TxStream",
    "constants",
]
