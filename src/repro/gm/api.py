"""A C-flavoured facade over the port API, mirroring GM's function names.

GM programs are written against ``gm_open`` / ``gm_send_with_callback``
/ ``gm_provide_receive_buffer`` / ``gm_receive`` / ``gm_unknown``.  This
module offers the same vocabulary over our :class:`~repro.gm.library.Port`
objects so examples and ported snippets read like the original listings
(Figure 3 of the paper):

    port = yield from gm_open(node, port_id=2)
    yield from gm_provide_receive_buffer(port, 4096)
    event = yield from gm_receive(port)
    gm_unknown(port, event)   # inside the poll loop, for unknown types

All functions are simulation processes unless noted.  Status constants
follow GM's convention loosely (GM_SUCCESS...).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..payload import Payload
from .events import EventType, GmEvent
from .library import Port

__all__ = [
    "GM_SUCCESS",
    "GM_FAILURE",
    "GM_NO_MESSAGE",
    "gm_open",
    "gm_close",
    "gm_send_with_callback",
    "gm_provide_receive_buffer",
    "gm_receive",
    "gm_blocking_receive",
    "gm_unknown",
    "gm_set_alarm",
]

GM_SUCCESS = 0
GM_FAILURE = 1
GM_NO_MESSAGE = 2


def gm_open(node, port_id: Optional[int] = None) -> Generator:
    """Open a port on ``node`` (a :class:`repro.cluster.Node`)."""
    port = yield from node.driver.open_port(port_id)
    return port


def gm_close(port: Port) -> Generator:
    yield from port.close()


def gm_send_with_callback(port: Port, data, size: Optional[int],
                          dest_node: int, dest_port: int,
                          callback: Optional[Callable] = None,
                          context=None, priority: int = 0) -> Generator:
    """Post a send.  ``data`` is bytes or a Payload; ``size`` may be
    None to use the whole buffer (GM passes explicit sizes)."""
    if isinstance(data, bytes):
        payload = Payload.from_bytes(data if size is None else data[:size])
    elif isinstance(data, Payload):
        payload = data if size is None else data.truncate(size)
    else:
        raise TypeError("gm_send_with_callback wants bytes or Payload")
    msg_id = yield from port.send(payload, dest_node, dest_port,
                                  priority=priority, callback=callback,
                                  context=context)
    return msg_id


def gm_provide_receive_buffer(port: Port, size: int,
                              priority: int = 0) -> Generator:
    token_id = yield from port.provide_receive_buffer(size, priority)
    return token_id


def gm_receive(port: Port, timeout: Optional[float] = 0.0) -> Generator:
    """Poll once (GM's non-blocking ``gm_receive``).

    Returns a :class:`GmEvent` or None when the queue is empty within
    ``timeout`` (default: an instantaneous poll).
    """
    event = yield from port.receive(timeout=timeout)
    return event


def gm_blocking_receive(port: Port) -> Generator:
    """Block until any application-visible event arrives."""
    event = yield from port.receive(timeout=None)
    return event


def gm_unknown(port: Port, event: Optional[GmEvent]) -> Generator:
    """Hand an unrecognised event to the library (the FTGM recovery
    hook).  Safe to call with None or with well-known events."""
    if event is None or event.etype in (EventType.RECEIVED,
                                        EventType.SENT,
                                        EventType.ALARM):
        return
    yield from port.unknown(event)


def gm_set_alarm(port: Port, delay_us: float, context=None) -> None:
    """Non-process: schedule an ALARM event (GM's gm_set_alarm)."""
    port.set_alarm(delay_us, context)
