"""Sharded simulation: per-node event wheels under one coordinator.

The cluster is partitioned into *shards* — each node (host + NIC + its
side of every attached link) runs on its own :class:`ShardWheel`, and the
switches live on a dedicated fabric wheel.  A :class:`ShardedScheduler`
coordinates the wheels with the conservative Chandy–Misra discipline:
the lookahead window between two shards is the wire latency of the links
that join them, so a shard may always advance to
``min(neighbor_clock + wire_delay)`` without risking a causality
violation.  Cross-shard packet deliveries travel through
:class:`ShardChannel` objects, which double as the null-message/time-
grant bookkeeping of the protocol.

Two schedules are offered:

* ``"merged"`` (default) — the deterministic "simulated shards" mode:
  the coordinator repeatedly pops the globally earliest event across all
  wheels.  Because every wheel draws tie-break sequence numbers from one
  shared counter, the merged execution order is *bit-identical* to a
  single wheel holding every event: outcomes, telemetry and traces match
  serial execution byte for byte.  This is what CI verifies.

* ``"windowed"`` — true conservative rounds: the coordinator computes
  the global floor ``T`` and the grant bound ``B = T + min(lookahead)``,
  releases every wheel to run its events in ``[T, B)`` independently
  (inline, or on one worker thread per wheel with ``executor="threads"``),
  then flushes the cross-shard channels at the barrier.  Sends during a
  window can only arrive at ``send_time + latency >= B``, so no wheel
  ever receives an event in its past — the classic lookahead argument,
  asserted at every flush.

Zero-latency links between shards would collapse the lookahead window to
nothing (deadlock); they are rejected at cable time — co-locate the two
endpoints on one shard instead.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from typing import Any, Generator, List, Optional

from .core import Process, SimulationError, Simulator, Timeout

__all__ = [
    "LookaheadError",
    "ShardChannel",
    "ShardWheel",
    "ShardedScheduler",
    "SCHEDULES",
    "shards_from_env",
]

SCHEDULES = ("merged", "windowed", "threads")

_INF = float("inf")


class LookaheadError(SimulationError):
    """A shard boundary whose lookahead window is empty (deadlock)."""


def shards_from_env() -> tuple:
    """Resolve the (shards, schedule) execution mode from the environment.

    Sharding is an *execution mode*, not part of an experiment's
    identity: specs and their hashes never mention it (byte-identity of
    results is the invariant that makes this sound).  The engine
    therefore plumbs ``--shards`` through ``REPRO_SHARDS`` /
    ``REPRO_SHARD_SCHEDULE`` so pool and fork-server children inherit it.
    """
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    try:
        shards = int(raw) if raw else 1
    except ValueError:
        raise ValueError("REPRO_SHARDS must be an integer, got %r" % raw)
    schedule = os.environ.get("REPRO_SHARD_SCHEDULE", "").strip() or "merged"
    if schedule not in SCHEDULES:
        raise ValueError("unknown shard schedule %r (use one of %s)"
                         % (schedule, ", ".join(SCHEDULES)))
    return max(shards, 1), schedule


class ShardWheel(Simulator):
    """One shard's event wheel: a Simulator wired into a coordinator.

    All wheels of one scheduler share a single tie-break sequence counter
    and a single model-id stream, so the merged schedule reproduces the
    serial event order exactly.
    """

    __slots__ = ("shard_id", "scheduler")

    def __init__(self, scheduler: "ShardedScheduler", shard_id: int):
        super().__init__(seq=scheduler._seq, ids=scheduler.ids)
        self.shard_id = shard_id
        self.scheduler = scheduler

    def spawn(self, gen: Generator, name: str = "") -> Process:
        # Top-level code (campaign setup, workload drivers) spawns onto a
        # wheel whose clock may lag the global clock — wheels only
        # advance when they process events.  Pull the clock up to the
        # coordinator's first so the bootstrap resume lands "now", not in
        # this wheel's past.  Safe: every queued entry of this wheel is
        # at or after the global clock.
        sched = self.scheduler
        if sched._now > self._now:
            self._now = sched._now
        return Process(self, gen, name)

    def earliest_live(self) -> float:
        # The idle fold's external-work horizon must span every wheel:
        # a packet headed for this shard may still be an entry in the
        # sender shard's queue or a buffered channel arrival.
        return self.scheduler.earliest_live(self)

    # The base single-wheel scan, for the coordinator's mid-window path.
    earliest_live_local = Simulator.earliest_live


class ShardChannel:
    """One direction of a cross-shard link boundary.

    Carries packet deliveries from the sending wheel to the receiving
    wheel and accounts for the protocol traffic.  Under the merged
    schedule entries pass straight through to the receiver's delivery
    queue (the global clock makes that safe); under the windowed schedule
    they buffer until the barrier, where :meth:`flush` releases every
    arrival inside the next grant window — the "time grant" of the
    null-message protocol.
    """

    __slots__ = ("scheduler", "src", "dst", "lookahead", "delivery",
                 "buffer", "handoffs", "batches")

    def __init__(self, scheduler: "ShardedScheduler", src: ShardWheel,
                 dst: ShardWheel, lookahead: float, delivery):
        if lookahead <= 0.0:
            raise LookaheadError(
                "zero-lookahead shard boundary (link latency %r): a "
                "cross-shard link must have positive wire latency, or its "
                "endpoints must be co-located on one shard" % (lookahead,))
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.lookahead = lookahead
        self.delivery = delivery  # receiver-side _DeliveryQueue
        self.buffer: deque = deque()
        self.handoffs = 0   # packets that crossed this boundary
        self.batches = 0    # barrier flushes that released >= 1 packet
        scheduler._register_channel(self)

    def post(self, when: float, packet, duplicate, on_accept) -> None:
        """Hand a delivery to the far shard, arriving at time ``when``."""
        self.handoffs += 1
        if self.scheduler._direct:
            self.delivery.push(when, packet, duplicate, on_accept)
        else:
            self.buffer.append((when, packet, duplicate, on_accept))

    def peek(self) -> float:
        return self.buffer[0][0] if self.buffer else _INF

    def flush(self, bound: Optional[float], inclusive: bool = False) -> int:
        """Release buffered arrivals below ``bound`` into the receiver.

        ``bound=None`` releases everything (used by the coordinator's
        single-step path, where the global clock makes it exact).  The
        conservative protocol guarantees every released arrival is at or
        after the receiver's clock; violating that means the lookahead
        argument was broken somewhere, so it is a hard error.
        """
        buf = self.buffer
        released = 0
        dst = self.dst
        push = self.delivery.push
        while buf:
            when = buf[0][0]
            if bound is not None:
                if inclusive:
                    if when > bound:
                        break
                elif when >= bound:
                    break
            if when < dst._now:
                raise SimulationError(
                    "causality violation at shard boundary: arrival at "
                    "t=%r is in shard %d's past (t=%r)"
                    % (when, dst.shard_id, dst._now))
            entry = buf.popleft()
            push(entry[0], entry[1], entry[2], entry[3])
            released += 1
        if released:
            self.batches += 1
        return released

    def ckpt_state(self) -> dict:
        """Snapshot contract: boundary stats plus buffered crossings."""
        return {
            "src": self.src.shard_id,
            "dst": self.dst.shard_id,
            "lookahead": self.lookahead,
            "handoffs": self.handoffs,
            "batches": self.batches,
            "buffer": [
                {
                    "when": when,
                    "packet": packet.ckpt_state(),
                    "duplicate": duplicate.ckpt_state()
                    if duplicate is not None else None,
                    "on_accept": on_accept is not None,
                }
                for when, packet, duplicate, on_accept in self.buffer
            ],
        }


class ShardedScheduler:
    """Coordinator for a set of shard wheels.

    Exposes the :class:`Simulator` surface the rest of the project
    expects from ``cluster.sim`` (``now``/``run``/``step``/``peek``/
    ``spawn``/``event``/``timeout``/``_seq``/``ids``/``inert``), so
    experiments, harvesters and workloads run unchanged on top of it.
    """

    def __init__(self, n_wheels: int, schedule: str = "merged",
                 threads: Optional[int] = None):
        if n_wheels < 1:
            raise ValueError("need at least one wheel")
        if schedule == "threads":
            schedule, self._threaded = "windowed", True
        elif schedule in ("merged", "windowed"):
            self._threaded = False
        else:
            raise ValueError("unknown shard schedule %r" % (schedule,))
        self.schedule = schedule
        self._direct = schedule == "merged"
        self._seq = itertools.count()
        self.ids = itertools.count(1)
        self.wheels: List[ShardWheel] = [ShardWheel(self, i)
                                         for i in range(n_wheels)]
        self.channels: List[ShardChannel] = []
        self.lookahead = _INF
        self._now = 0.0
        self._tl = threading.local()
        self._pool = None
        self._pool_pid = None
        self._window_floor: Optional[float] = None
        self.windows = 0   # conservative rounds executed (windowed only)

    # -- shard boundary registry ------------------------------------------------

    def _register_channel(self, channel: ShardChannel) -> None:
        self.channels.append(channel)
        if channel.lookahead < self.lookahead:
            self.lookahead = channel.lookahead

    def earliest_live(self, wheel: Optional[ShardWheel] = None) -> float:
        """Earliest non-inert event anywhere in the sharded schedule.

        Mid-window (conservative rounds) the other wheels are in motion,
        possibly on other threads, so their queues cannot be scanned;
        the window floor is the safe external horizon then — nothing a
        peer does this round can reach ``wheel`` before the next grant.
        Outside a window (and always under the merged schedule, whose
        global clock serializes wheels) the scan spans every wheel and
        every buffered channel arrival, reproducing the serial horizon
        exactly.
        """
        floor = self._window_floor
        if floor is not None:
            local = wheel.earliest_live_local() if wheel is not None else _INF
            return min(local, floor)
        t_ext = _INF
        for w in self.wheels:
            inert = w.inert
            for when, _seq, item in w._queue:
                if when < t_ext and item not in inert:
                    t_ext = when
        for channel in self.channels:
            buf = channel.buffer
            if buf and buf[0][0] < t_ext:
                t_ext = buf[0][0]
        return t_ext

    def boundary_stats(self) -> dict:
        return {
            "wheels": len(self.wheels),
            "channels": len(self.channels),
            "lookahead_us": None if self.lookahead is _INF else self.lookahead,
            "handoffs": sum(ch.handoffs for ch in self.channels),
            "batches": sum(ch.batches for ch in self.channels),
            "windows": self.windows,
        }

    # -- Simulator-compatible surface -------------------------------------------

    @property
    def now(self) -> float:
        wheel = getattr(self._tl, "wheel", None)
        return wheel._now if wheel is not None else self._now

    @property
    def active_process(self) -> Optional[Process]:
        wheel = getattr(self._tl, "wheel", None)
        if wheel is not None:
            return wheel.active_process
        for w in self.wheels:
            if w.active_process is not None:
                return w.active_process
        return None

    @property
    def _queue(self):
        entries: List = []
        for wheel in self.wheels:
            entries.extend(wheel._queue)
        return entries

    @property
    def inert(self) -> set:
        merged: set = set()
        for wheel in self.wheels:
            merged |= wheel.inert
        return merged

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Spawn on wheel 0 (the coordinator's "control" shard)."""
        return self.wheels[0].spawn(gen, name)

    def event(self):
        wheel = self.wheels[0]
        if self._now > wheel._now:
            wheel._now = self._now
        return wheel.event()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        wheel = self.wheels[0]
        if self._now > wheel._now:
            wheel._now = self._now
        return wheel.timeout(delay, value)

    def timeout_at(self, when: float) -> Timeout:
        wheel = self.wheels[0]
        if self._now > wheel._now:
            wheel._now = self._now
        return wheel.timeout_at(when)

    def any_of(self, events):
        return self.wheels[0].any_of(events)

    def all_of(self, events):
        return self.wheels[0].all_of(events)

    def peek(self) -> float:
        earliest = _INF
        for wheel in self.wheels:
            queue = wheel._queue
            if queue and queue[0][0] < earliest:
                earliest = queue[0][0]
        for channel in self.channels:
            buf = channel.buffer
            if buf and buf[0][0] < earliest:
                earliest = buf[0][0]
        return earliest

    def _flush_all(self) -> None:
        for channel in self.channels:
            if channel.buffer:
                channel.flush(None)

    def step(self) -> None:
        """Process the single globally earliest event (exact, any schedule).

        With every buffered arrival released first, popping the global
        minimum across wheels reproduces the serial order exactly — the
        shared sequence counter breaks same-instant ties identically.
        """
        self._flush_all()
        best = None
        best_key = None
        for wheel in self.wheels:
            queue = wheel._queue
            if queue:
                key = queue[0][:2]
                if best_key is None or key < best_key:
                    best, best_key = wheel, key
        if best is None:
            raise IndexError("step from an empty schedule")
        self._now = best_key[0]
        best.step()

    def run(self, until: Optional[float] = None) -> None:
        if until is not None and until < self._now:
            raise ValueError(
                "cannot run backwards: until=%r < now=%r" % (until, self._now))
        if self.schedule == "windowed":
            self._run_windowed(until)
        else:
            self._run_merged(until)

    # -- merged schedule ---------------------------------------------------------

    def _run_merged(self, until: Optional[float]) -> None:
        wheels = self.wheels
        while True:
            best = None
            best_time = _INF
            best_seq = 0
            for wheel in wheels:
                queue = wheel._queue
                if queue:
                    head = queue[0]
                    when = head[0]
                    if when < best_time or (when == best_time
                                            and head[1] < best_seq):
                        best, best_time, best_seq = wheel, when, head[1]
            if best is None or (until is not None and best_time > until):
                break
            self._now = best_time
            best.step()
        if until is not None:
            self._now = until
            for wheel in wheels:
                if wheel._now < until:
                    wheel._now = until

    def run_before(self, bound: float) -> None:
        """Process every queued event strictly earlier than ``bound``.

        The sharded twin of :meth:`Simulator.run_before`, used by the
        branch executor to advance a group parent to the instant just
        before a fault fires.  It always uses the exact global-minimum
        pop (with channel buffers flushed each step so a windowed
        buffer cannot hide an earlier arrival) — the byte-identity
        invariant makes exact stepping equivalent under every schedule.
        Like the serial version, the clock is left at the last processed
        event; the caller owns window-edge bookkeeping.
        """
        wheels = self.wheels
        while True:
            self._flush_all()
            best = None
            best_time = _INF
            best_seq = 0
            for wheel in wheels:
                queue = wheel._queue
                if queue:
                    head = queue[0]
                    when = head[0]
                    if when < best_time or (when == best_time
                                            and head[1] < best_seq):
                        best, best_time, best_seq = wheel, when, head[1]
            if best is None or best_time >= bound:
                break
            self._now = best_time
            best.step()

    def ckpt_state(self) -> dict:
        """Snapshot contract: the whole sharded schedule, wheel by wheel.

        The shared tie-break/id counters appear once here and once per
        wheel (each wheel reports the shared position) — redundancy is
        harmless and keeps the per-wheel contract uniform with serial.
        """
        from ..ckpt.capture import count_position

        return {
            "schedule": self.schedule + ("+threads" if self._threaded
                                         else ""),
            "now": self._now,
            "next_seq": count_position(self._seq),
            "next_id": count_position(self.ids),
            "lookahead": None if self.lookahead is _INF else self.lookahead,
            "windows": self.windows,
            "wheels": [wheel.ckpt_state() for wheel in self.wheels],
            "channels": [channel.ckpt_state() for channel in self.channels],
        }

    # -- windowed (conservative rounds) schedule ---------------------------------

    def _run_wheel_window(self, wheel: ShardWheel, bound: Optional[float],
                          until: Optional[float]) -> None:
        self._tl.wheel = wheel
        try:
            if bound is None:
                wheel.run(until) if until is not None else wheel.run()
            else:
                wheel.run_before(bound)
        finally:
            self._tl.wheel = None

    def _executor(self):
        if not self._threaded or len(self.wheels) < 2:
            return None
        pid = os.getpid()
        if self._pool is None or self._pool_pid != pid:
            from concurrent.futures import ThreadPoolExecutor
            self._pool = ThreadPoolExecutor(
                max_workers=len(self.wheels),
                thread_name_prefix="shard-wheel")
            self._pool_pid = pid
        return self._pool

    def _run_windowed(self, until: Optional[float]) -> None:
        wheels = self.wheels
        channels = self.channels
        lookahead = self.lookahead
        pool = self._executor()
        while True:
            floor = self.peek()
            if floor is _INF or floor == _INF \
                    or (until is not None and floor > until):
                break
            bound: Optional[float] = floor + lookahead
            inclusive_edge = None
            if bound == _INF or (until is not None and bound > until):
                # Terminal window: everything at or before `until` is
                # safe (any send inside it arrives past `until`), and
                # with no channels at all the wheels are independent.
                bound = None
                inclusive_edge = until
            if inclusive_edge is not None:
                for channel in channels:
                    channel.flush(inclusive_edge, inclusive=True)
            else:
                for channel in channels:
                    channel.flush(bound)
            self.windows += 1
            self._window_floor = floor
            try:
                if pool is not None:
                    list(pool.map(
                        lambda w: self._run_wheel_window(w, bound, until),
                        wheels))
                else:
                    for wheel in wheels:
                        self._run_wheel_window(wheel, bound, until)
            finally:
                self._window_floor = None
            if bound is None:
                break
        if until is not None:
            self._now = until
            for wheel in wheels:
                if wheel._now < until:
                    wheel._now = until
        else:
            last = max(wheel._now for wheel in wheels)
            if last > self._now:
                self._now = last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ShardedScheduler %d wheels, %s, t=%s>" % (
            len(self.wheels), self.schedule, self._now)
