"""Seeded randomness for reproducible experiments.

Every stochastic decision in the project (fault locations, injection
times, payload patterns, jitter) draws from a :class:`SeededRng` created
from an experiment-level seed plus a purpose string, so adding a new
random consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeededRng", "derive_seed"]


def derive_seed(base_seed: int, purpose: str) -> int:
    """Derive a stable 64-bit child seed from ``base_seed`` and a label."""
    digest = hashlib.sha256(
        ("%d/%s" % (base_seed, purpose)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng(random.Random):
    """A ``random.Random`` bound to (base_seed, purpose).

    The purpose label is kept for diagnostics so traces can say *which*
    stream produced a decision.
    """

    def __init__(self, base_seed: int, purpose: str):
        self.base_seed = base_seed
        self.purpose = purpose
        super().__init__(derive_seed(base_seed, purpose))

    def spawn(self, purpose: str) -> "SeededRng":
        """Create an independent child stream."""
        return SeededRng(self.base_seed, "%s/%s" % (self.purpose, purpose))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SeededRng(base_seed=%d, purpose=%r)" % (
            self.base_seed, self.purpose)
