"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, LANai processors, DMA engines,
links, switches, daemons — runs on this kernel.  It is a small, hand-rolled
cousin of SimPy: time is a float (we use microseconds throughout the
project), processes are Python generators that ``yield`` events, and the
simulator advances a heap of scheduled events.

The kernel is deliberately deterministic: events scheduled for the same
instant fire in insertion order, and all randomness in the project flows
through :mod:`repro.sim.rng` seeded generators, so every experiment is
exactly reproducible from its seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-triggering events, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``;
    processes modelling crash-able entities catch this to unwind.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Yielding a pending event from a process suspends the
    process until the event triggers; the event's value becomes the value
    of the ``yield`` expression (or, for a failed event, its exception is
    raised inside the process).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self.callbacks is None or self.sim._is_scheduled(self)

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            return self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event re-raises ``exc`` inside every waiting process.  If
        nobody is waiting, the failure escapes :meth:`Simulator.run` unless
        :meth:`defuse` was called.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._exc = exc
        self.sim._schedule(self, 0.0)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled even if no process observes it."""
        self._defused = True
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        handled = self._defused or bool(callbacks)
        for callback in callbacks:
            callback(self)
        if self._exc is not None and not handled:
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<%s %s at t=%s>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A generator-based process; also an event that fires on completion.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, the process event succeeds with the return value;
    when it raises, the process event fails with the exception.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError("Process requires a generator, got %r" % (gen,))
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._injected: Optional[BaseException] = None
        # Bootstrap: step the generator at the current instant.
        init = Event(sim)
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        return self.callbacks is not None

    def interrupt(self, cause: Any = None) -> None:
        """Throw an exception into the process at the current time.

        If ``cause`` is itself an exception instance it is thrown
        directly (so victims can catch domain errors like ``HostCrashed``
        by type); otherwise an :class:`Interrupt` wrapping ``cause`` is
        thrown.  Either way, if the process does not catch it, the
        process terminates *quietly* — interrupts model kills and
        crashes, which should not escalate out of ``run()``.

        A process may not interrupt itself, and interrupting a finished
        process is a silent no-op (the usual race when a victim completes
        in the same instant the interrupter fires).
        """
        if not self.is_alive:
            return
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        exc = cause if isinstance(cause, BaseException) else Interrupt(cause)
        self._injected = exc
        hit = Event(self.sim)
        hit._exc = exc
        hit._defused = True
        hit.callbacks.append(self._resume)
        self.sim._schedule(hit, 0.0)

    def _resume(self, event: Event) -> None:
        if self.callbacks is None:
            return
        self._waiting_on = None
        self.sim.active_process = self
        try:
            if event._exc is not None:
                target = self._gen.throw(event._exc)
            else:
                target = self._gen.send(event._value)
        except StopIteration as stop:
            self.sim.active_process = None
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim.active_process = None
            if self.triggered:
                raise
            if isinstance(exc, Interrupt) or exc is self._injected:
                # An uncaught interrupt/kill terminates quietly-by-design:
                # interrupts model crashes, and a killed process "failing"
                # would needlessly escalate to run().  Waiters, if any,
                # still observe the exception.
                self._exc = exc
                self._defused = True
                self.sim._schedule(self, 0.0)
            else:
                self.fail(exc)
            return
        self.sim.active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r; processes must yield Event instances"
                % (self.name, target))
        if target.callbacks is None:
            # Already processed: resume immediately (at the current instant).
            rerun = Event(self.sim)
            rerun._value = target._value
            rerun._exc = target._exc
            rerun._defused = True
            rerun.callbacks.append(self._resume)
            self.sim._schedule(rerun, 0.0)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from two simulators")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self._events
            if ev.callbacks is None and ev._exc is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all of ``events`` have triggered."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(hello(sim))
        sim.run()
        assert sim.now == 5.0
    """

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._seq = itertools.count()
        self._scheduled: set = set()
        self.active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time (microseconds by project convention)."""
        return self._now

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process running ``gen``."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling internals ----------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))
        self._scheduled.add(id(event))

    def _is_scheduled(self, event: Event) -> bool:
        return id(event) in self._scheduled

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        when, _, event = heapq.heappop(self._queue)
        self._scheduled.discard(id(event))
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls see
        a monotonic clock.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self._now:
            raise ValueError(
                "cannot run backwards: until=%r < now=%r" % (until, self._now))
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = until
