"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, LANai processors, DMA engines,
links, switches, daemons — runs on this kernel.  It is a small, hand-rolled
cousin of SimPy: time is a float (we use microseconds throughout the
project), processes are Python generators that ``yield`` events, and the
simulator advances a heap of scheduled events.

The kernel is deliberately deterministic: events scheduled for the same
instant fire in insertion order, and all randomness in the project flows
through :mod:`repro.sim.rng` seeded generators, so every experiment is
exactly reproducible from its seed.

The hot path is allocation-lean: events carry ``__slots__``, scheduling
state is a per-event flag (no ``id()`` bookkeeping, which could report a
stale *triggered* after the interpreter reuses an id), and same-instant
process resumptions ride tiny :class:`_Resume` records through the heap
instead of throwaway :class:`Event` objects.  Resumptions share the one
sequence counter with real events, so firing order is identical to the
event-per-resume formulation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-triggering events, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``;
    processes modelling crash-able entities catch this to unwind.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Yielding a pending event from a process suspends the
    process until the event triggers; the event's value becomes the value
    of the ``yield`` expression (or, for a failed event, its exception is
    raised inside the process).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_defused",
                 "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._defused = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self.callbacks is None or self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            return self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.callbacks is None or self._scheduled:
            raise SimulationError("event already triggered")
        self._value = value
        self._scheduled = True
        sim = self.sim
        _heappush(sim._queue, (sim._now, next(sim._seq), self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event re-raises ``exc`` inside every waiting process.  If
        nobody is waiting, the failure escapes :meth:`Simulator.run` unless
        :meth:`defuse` was called.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.callbacks is None or self._scheduled:
            raise SimulationError("event already triggered")
        self._exc = exc
        self.sim._schedule(self, 0.0)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled even if no process observes it."""
        self._defused = True
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        exc = self._exc
        if exc is None:
            for callback in callbacks:
                callback(self)
            return
        handled = self._defused or bool(callbacks)
        for callback in callbacks:
            callback(self)
        if not handled:
            raise exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<%s %s at t=%s>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers a fixed delay after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        # Timeouts are the hottest allocation in the project; the base
        # __init__ and _schedule are inlined to drop two call frames.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self._defused = False
        self._scheduled = True
        _heappush(sim._queue, (sim._now + delay, next(sim._seq), self))


class _Resume:
    """A same-instant process resumption, heap-scheduled like an event.

    Replaces the throwaway bootstrap/rerun/interrupt ``Event`` objects:
    no callback list, no trigger bookkeeping — just the generator step.
    It carries ``_value``/``_exc`` under the same names an :class:`Event`
    uses, so :meth:`Process._resume` accepts either without a wrapper.
    """

    __slots__ = ("process", "_value", "_exc")

    def __init__(self, process: "Process", value: Any,
                 exc: Optional[BaseException]):
        self.process = process
        self._value = value
        self._exc = exc


class Process(Event):
    """A generator-based process; also an event that fires on completion.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, the process event succeeds with the return value;
    when it raises, the process event fails with the exception.
    """

    __slots__ = ("_gen", "_send", "_throw", "name", "_waiting_on",
                 "_injected", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError("Process requires a generator, got %r" % (gen,))
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._injected: Optional[BaseException] = None
        # One bound method for the lifetime of the process (appending
        # ``self._resume`` would allocate a fresh bound method per wait).
        self._resume_cb = self._resume
        # Bootstrap: step the generator at the current instant.
        sim._schedule_resume(self, None, None)

    @property
    def is_alive(self) -> bool:
        return self.callbacks is not None

    def interrupt(self, cause: Any = None) -> None:
        """Throw an exception into the process at the current time.

        If ``cause`` is itself an exception instance it is thrown
        directly (so victims can catch domain errors like ``HostCrashed``
        by type); otherwise an :class:`Interrupt` wrapping ``cause`` is
        thrown.  Either way, if the process does not catch it, the
        process terminates *quietly* — interrupts model kills and
        crashes, which should not escalate out of ``run()``.

        A process may not interrupt itself, and interrupting a finished
        process is a silent no-op (the usual race when a victim completes
        in the same instant the interrupter fires).
        """
        if not self.is_alive:
            return
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._waiting_on = None
        exc = cause if isinstance(cause, BaseException) else Interrupt(cause)
        self._injected = exc
        self.sim._schedule_resume(self, None, exc)

    def _resume(self, event) -> None:
        """Advance the generator one step.

        ``event`` is the :class:`Event` this process was waiting on or a
        :class:`_Resume` record; only its ``_value``/``_exc`` are read.
        """
        if self.callbacks is None:
            return
        # ``_waiting_on`` is NOT cleared here: it may go stale (pointing
        # at the event that just fired), but a fired event's callbacks
        # are already None, so interrupt()'s removal guard never touches
        # it — and the waiter branch below overwrites it on the next
        # wait.  One store saved per generator step.
        sim = self.sim
        sim.active_process = self
        try:
            exc = event._exc
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            sim.active_process = None
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as err:
            sim.active_process = None
            if self.triggered:
                raise
            if isinstance(err, Interrupt) or err is self._injected:
                # An uncaught interrupt/kill terminates quietly-by-design:
                # interrupts model crashes, and a killed process "failing"
                # would needlessly escalate to run().  Waiters, if any,
                # still observe the exception.
                self._exc = err
                self._defused = True
                sim._schedule(self, 0.0)
            else:
                self.fail(err)
            return
        sim.active_process = None
        try:
            target_callbacks = target.callbacks
        except AttributeError:
            raise SimulationError(
                "process %r yielded %r; processes must yield Event instances"
                % (self.name, target)) from None
        if target_callbacks is None:
            # Already processed: resume immediately (at the current
            # instant).  _schedule_resume is inlined — this branch is the
            # hot half of every wakeup chain.
            record = _Resume.__new__(_Resume)
            record.process = self
            record._value = target._value
            record._exc = target._exc
            _heappush(sim._queue, (sim._now, next(sim._seq), record))
        else:
            self._waiting_on = target
            target_callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from two simulators")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self._events
            if ev.callbacks is None and ev._exc is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    # _check is looked up per trigger; bind once per instance would cost
    # a slot for a cold path, so AnyOf/AllOf keep the plain method.


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all of ``events`` have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(hello(sim))
        sim.run()
        assert sim.now == 5.0
    """

    __slots__ = ("_now", "_queue", "_seq", "active_process", "event",
                 "timeout", "ids", "inert")

    def __init__(self, seq: Optional[Any] = None, ids: Optional[Any] = None):
        self._now = 0.0
        queue: List = []
        self._queue = queue
        # ``seq``/``ids`` may be injected so several wheels can share one
        # tie-break counter and one id stream (sharded simulation: the
        # merged schedule's event order is then bit-identical to a single
        # wheel holding every event).  Left to None, each Simulator owns
        # private counters — the historical behaviour, byte-for-byte.
        if seq is None:
            seq = itertools.count()
        self._seq = seq
        self.active_process: Optional[Process] = None
        # Per-run identifier source for model objects (message ids, token
        # ids, ...).  Models must draw ids that can influence simulated
        # behaviour from here, never from a module-level counter: a
        # process-global counter leaks how many simulations ran earlier
        # in the process into the current one, breaking run-for-run
        # determinism (serial vs. pooled vs. forked executions would
        # disagree).
        self.ids = ids if ids is not None else itertools.count(1)
        # Scheduled events that provably cannot change observable state
        # when they fire: replaced/stopped interval-timer expiries, and
        # idle housekeeping ticks an MCP has committed to absorbing
        # without work.  The tickless fast-forward scan skips over these
        # when looking for the next event that could matter.
        self.inert: set = set()

        # sim.event()/sim.timeout() are the two hottest allocation sites
        # in the project; these closures skip the type-call machinery
        # (tp_new + __init__ re-dispatch) and write the slots directly.
        # A factory-made Timeout never stores ``_defused``: the flag is
        # only read on the failure path, and a timeout is born triggered
        # so ``fail()`` can never accept it.
        event_new = Event.__new__
        timeout_new = Timeout.__new__
        seq_next = seq.__next__
        push = _heappush

        def event() -> Event:
            ev = event_new(Event)
            ev.sim = self
            ev.callbacks = []
            ev._value = None
            ev._exc = None
            ev._defused = False
            ev._scheduled = False
            return ev

        def timeout(delay: float, value: Any = None) -> Timeout:
            if delay < 0:
                raise ValueError("negative delay: %r" % (delay,))
            t = timeout_new(Timeout)
            t.sim = self
            t.callbacks = []
            t._value = value
            t._exc = None
            t._scheduled = True
            push(queue, (self._now + delay, seq_next(), t))
            return t

        self.event = event
        self.timeout = timeout

    @property
    def now(self) -> float:
        """Current simulation time (microseconds by project convention)."""
        return self._now

    # -- event construction ------------------------------------------------
    # event() and timeout() are closures bound in __init__.

    def timeout_at(self, when: float) -> Timeout:
        """A timeout landing at an absolute time, bitwise exact.

        The tickless fast-forward path arms timers on the precise floats
        the periodic re-arm chain would have produced; going through
        ``timeout(when - now)`` would schedule at ``now + (when - now)``,
        which is not guaranteed to equal ``when`` in float arithmetic.
        """
        if when < self._now:
            raise ValueError("timeout_at in the past: %r < %r"
                             % (when, self._now))
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = []
        t._value = None
        t._exc = None
        t._scheduled = True
        _heappush(self._queue, (when, next(self._seq), t))
        return t

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process running ``gen``."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling internals ----------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        event._scheduled = True
        _heappush(self._queue, (self._now + delay, next(self._seq), event))

    def _schedule_resume(self, process: Process, value: Any,
                         exc: Optional[BaseException]) -> None:
        """Queue a same-instant generator step (no Event allocation)."""
        _heappush(self._queue,
                  (self._now, next(self._seq), _Resume(process, value, exc)))

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        when, _, item = _heappop(self._queue)
        self._now = when
        if item.__class__ is _Resume:
            item.process._resume(item)
            return
        # Inlined Event._run_callbacks — one call frame per event saved.
        # (``_scheduled`` is deliberately left True: ``triggered`` and
        # the double-trigger guards test ``callbacks is None`` first.)
        callbacks, item.callbacks = item.callbacks, None
        exc = item._exc
        if exc is None:
            for callback in callbacks:
                callback(item)
            return
        handled = item._defused or bool(callbacks)
        for callback in callbacks:
            callback(item)
        if not handled:
            raise exc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def earliest_live(self) -> float:
        """Earliest scheduled event that is not marked inert, or ``inf``.

        The horizon the tickless idle fold leans on: between now and this
        time, nothing in the schedule can create externally visible work.
        A shard wheel overrides this to scan *every* wheel — work headed
        this way may still sit in another shard's queue.
        """
        inert = self.inert
        t_ext = float("inf")
        for when, _seq, item in self._queue:
            if when < t_ext and item not in inert:
                t_ext = when
        return t_ext

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls see
        a monotonic clock.
        """
        # The step() body is inlined below (twice): the per-event call
        # frame is measurable at millions of events.  Keep the three
        # copies (step, run, run-until) in sync.
        queue = self._queue
        pop = _heappop
        if until is None:
            while queue:
                when, _, item = pop(queue)
                self._now = when
                if item.__class__ is _Resume:
                    item.process._resume(item)
                    continue
                callbacks, item.callbacks = item.callbacks, None
                exc = item._exc
                if exc is None:
                    if len(callbacks) == 1:
                        # Almost every event has exactly one waiter; skip
                        # the iterator.
                        callbacks[0](item)
                        continue
                    for callback in callbacks:
                        callback(item)
                    continue
                handled = item._defused or bool(callbacks)
                for callback in callbacks:
                    callback(item)
                if not handled:
                    raise exc
            return
        if until < self._now:
            raise ValueError(
                "cannot run backwards: until=%r < now=%r" % (until, self._now))
        while queue and queue[0][0] <= until:
            when, _, item = pop(queue)
            self._now = when
            if item.__class__ is _Resume:
                item.process._resume(item)
                continue
            callbacks, item.callbacks = item.callbacks, None
            exc = item._exc
            if exc is None:
                if len(callbacks) == 1:
                    callbacks[0](item)
                    continue
                for callback in callbacks:
                    callback(item)
                continue
            handled = item._defused or bool(callbacks)
            for callback in callbacks:
                callback(item)
            if not handled:
                raise exc
        self._now = until

    def ckpt_state(self) -> dict:
        """Snapshot contract: the wheel, exactly (docs/CHECKPOINT.md).

        Captures the clock, both shared counters' positions, and every
        heap entry in pop order ``(when, seq, kind, name)``.  The heap
        list's internal layout is *not* part of the contract — two heaps
        with different layouts but identical entry sets pop identically,
        so the canonical form sorts by the globally unique ``(when,
        seq)`` key.
        """
        from ..ckpt.capture import count_position

        entries = []
        for when, seq, item in self._queue:
            cls = item.__class__
            if cls is _Resume:
                kind, name = "resume", item.process.name
            elif cls is Process or isinstance(item, Process):
                kind, name = "process", item.name
            else:
                kind, name = cls.__name__.lower(), ""
            entries.append((when, seq, kind, name))
        entries.sort(key=lambda e: (e[0], e[1]))
        return {
            "now": self._now,
            "next_seq": count_position(self._seq),
            "next_id": count_position(self.ids),
            "queue": [list(e) for e in entries],
            "inert": len(self.inert),
        }

    def run_before(self, bound: float) -> None:
        """Process every queued event strictly earlier than ``bound``.

        The conservative shard protocol grants a wheel the half-open
        window ``[now, bound)``: any event at exactly ``bound`` may still
        race an incoming cross-shard delivery, so it must wait for the
        next grant.  Unlike :meth:`run`, the clock is left at the last
        processed event — the coordinator owns window-edge bookkeeping.
        """
        queue = self._queue
        pop = _heappop
        while queue and queue[0][0] < bound:
            when, _, item = pop(queue)
            self._now = when
            if item.__class__ is _Resume:
                item.process._resume(item)
                continue
            callbacks, item.callbacks = item.callbacks, None
            exc = item._exc
            if exc is None:
                if len(callbacks) == 1:
                    callbacks[0](item)
                    continue
                for callback in callbacks:
                    callback(item)
                continue
            handled = item._defused or bool(callbacks)
            for callback in callbacks:
                callback(item)
            if not handled:
                raise exc
