"""Discrete-event simulation kernel (time unit: microseconds)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Pipe, Resource, Store
from .rng import SeededRng, derive_seed
from .shard import (
    LookaheadError,
    ShardChannel,
    ShardedScheduler,
    ShardWheel,
    shards_from_env,
)
from .trace import TraceRecord, Tracer, chrome_trace_doc

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "LookaheadError",
    "Pipe",
    "Process",
    "Resource",
    "SeededRng",
    "ShardChannel",
    "ShardedScheduler",
    "ShardWheel",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "chrome_trace_doc",
    "derive_seed",
    "shards_from_env",
]
