"""Discrete-event simulation kernel (time unit: microseconds)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Pipe, Resource, Store
from .rng import SeededRng, derive_seed
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Pipe",
    "Process",
    "Resource",
    "SeededRng",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "derive_seed",
]
