"""Shared-resource primitives built on the simulation kernel.

Three primitives cover everything this project models:

* :class:`Resource` — a counted semaphore with FIFO queueing.  The PCI bus,
  the host DMA interface and LANai packet interfaces are Resources.
* :class:`Store` — an unbounded (or bounded) FIFO of items with blocking
  ``get``.  Event queues, link pipelines and daemon mailboxes are Stores.
* :class:`Pipe` — a byte-rate-limited conduit: each transfer holds the pipe
  for ``bytes / bandwidth + setup`` time.  Links and DMA engines use it to
  turn sizes into simulated time with natural serialization.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from ..obs.metrics import BusyTracker
from .core import Event, Simulator

__all__ = ["Resource", "Store", "Pipe"]


class Resource:
    """A counted, FIFO-fair semaphore.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(cost)
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters", "_busy")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # Utilization book-keeping (shared with repro.obs).
        self._busy = BusyTracker()

    @property
    def busy_time(self) -> float:
        """Accumulated busy time over *closed* busy intervals."""
        return self._busy.busy_time

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.sim.event()
        if self.in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def _grant(self, ev: Event) -> None:
        if self.in_use == 0:
            self._busy.engage(self.sim.now)
        self.in_use += 1
        ev.succeed(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without matching request()")
        self.in_use -= 1
        if self.in_use == 0:
            self._busy.release(self.sim.now)
        while self._waiters and self.in_use < self.capacity:
            self._grant(self._waiters.popleft())

    def ckpt_state(self) -> dict:
        """Snapshot contract: occupancy, queue depth, busy accounting."""
        return {
            "capacity": self.capacity,
            "in_use": self.in_use,
            "waiters": len(self._waiters),
            "busy": self._busy.ckpt_state(),
        }

    def acquire(self, hold: float) -> Generator:
        """Process helper: acquire, hold for ``hold`` time units, release."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(hold)
        finally:
            self.release()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy."""
        busy = self._busy.total(self.sim.now)
        span = elapsed if elapsed is not None else self.sim.now
        return busy / span if span > 0 else 0.0


class Store:
    """FIFO item store with blocking ``get`` and optional capacity.

    ``put`` on a full bounded store raises (our hardware queues never
    silently block the producer; the producer models its own back-off).
    """

    __slots__ = ("sim", "capacity", "items", "_getters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        if self.full:
            raise OverflowError("store is full (capacity=%r)" % self.capacity)
        self.items.append(item)

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: (True, item) or (False, None)."""
        if self.items:
            return True, self.items.popleft()
        return False, None

    def get(self) -> Event:
        """Return an event yielding the next item (blocks until one exists)."""
        ev = self.sim.event()
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending ``get`` (e.g. after losing a timeout race).

        A no-op if the event already received an item or was never a
        getter of this store.
        """
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def drain(self) -> List[Any]:
        """Remove and return all queued items (does not wake getters)."""
        items = list(self.items)
        self.items.clear()
        return items

    def ckpt_state(self) -> dict:
        """Snapshot contract: queued items in order, blocked-getter depth.

        Items go through :func:`repro.ckpt.capture.stable_value` — model
        objects supply their own contract, containers recurse, and
        anything without a contract collapses to its type name (never a
        default ``repr``, whose embedded address would poison the hash).
        """
        from ..ckpt.capture import stable_value

        return {
            "capacity": self.capacity,
            "items": [stable_value(item) for item in self.items],
            "getters": len(self._getters),
        }


class Pipe:
    """A serialized, rate-limited conduit.

    ``transfer(nbytes)`` is a process-helper that waits for exclusive use of
    the pipe, then holds it for ``setup + nbytes / bandwidth``.  Concurrent
    transfers queue FIFO, which is exactly how a shared bus behaves at this
    level of abstraction.

    ``bandwidth`` is in bytes per time unit (MB/s if time is µs and sizes
    are bytes, since 1 MB/s == 1 byte/µs).
    """

    __slots__ = ("sim", "bandwidth", "setup", "_res", "bytes_moved")

    def __init__(self, sim: Simulator, bandwidth: float, setup: float = 0.0,
                 capacity: int = 1):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.setup = setup
        self._res = Resource(sim, capacity)
        self.bytes_moved = 0

    def transfer_time(self, nbytes: int) -> float:
        return self.setup + nbytes / self.bandwidth

    def transfer(self, nbytes: int) -> Generator:
        """Process helper: move ``nbytes`` through the pipe."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        req = self._res.request()
        yield req
        try:
            yield self.sim.timeout(self.transfer_time(nbytes))
            self.bytes_moved += nbytes
        finally:
            self._res.release()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        return self._res.utilization(elapsed)

    def ckpt_state(self) -> dict:
        """Snapshot contract: rate parameters, moved bytes, inner resource."""
        return {
            "bandwidth": self.bandwidth,
            "setup": self.setup,
            "bytes_moved": self.bytes_moved,
            "resource": self._res.ckpt_state(),
        }
