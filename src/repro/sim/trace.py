"""Structured event tracing.

A :class:`Tracer` collects (time, source, kind, details) records.  Traces
feed three consumers: debugging, the recovery-timeline figure (Fig. 9 of
the paper), and assertions in integration tests ("the watchdog fired
before the FTD woke").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join("%s=%r" % kv for kv in sorted(self.details.items()))
        return "[%12.3f] %-18s %-24s %s" % (
            self.time, self.source, self.kind, extra)


def _noop_emit(time: float, source: str, kind: str, **details: Any) -> None:
    """Placeholder ``emit`` installed while a tracer is disabled."""


class Tracer:
    """Collects trace records; optionally filters by kind.

    A disabled tracer costs one attribute lookup plus a no-op call per
    ``emit``: toggling :attr:`enabled` swaps the instance's ``emit``
    between the recording method and a module-level no-op, so the
    hundreds of thousands of trace points in a fault-injection campaign
    are free when nobody is listening.  Hot paths may additionally guard
    on ``tracer.enabled`` to skip building the keyword arguments.
    """

    def __init__(self, enabled: bool = True,
                 kinds: Optional[set] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None):
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        self.sink = sink
        self.enabled = enabled  # property: installs the right emit

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self._enabled:
            # Restore the recording method (remove the instance shadow).
            self.__dict__.pop("emit", None)
        else:
            self.__dict__["emit"] = _noop_emit

    def emit(self, time: float, source: str, kind: str, **details: Any) -> None:
        if not self._enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, source, kind, details)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def filter(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given kind and/or source."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def first(self, kind: str) -> Optional[TraceRecord]:
        for record in self.records:
            if record.kind == kind:
                return record
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.kind == kind:
                return record
        return None

    def to_chrome_trace(self) -> str:
        """The trace as Chrome trace-event JSON (chrome://tracing).

        Every record becomes an instant event: ``ts`` is the simulated
        time (already in µs, the trace-event unit), ``pid`` groups by
        source, ``name`` is the kind and ``args`` carries the details.
        Load the string into chrome://tracing or Perfetto to scrub
        through a recovery timeline visually.
        """
        import json

        events = [
            {
                "name": record.kind,
                "ph": "i",          # instant event
                "s": "t",           # thread-scoped
                "ts": record.time,
                "pid": record.source,
                "tid": record.source,
                "args": {key: repr(value) if not isinstance(
                             value, (int, float, str, bool, type(None)))
                         else value
                         for key, value in record.details.items()},
            }
            for record in self.records
        ]
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"}, sort_keys=True)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
