"""Structured event tracing.

A :class:`Tracer` collects (time, source, kind, details) records.  Traces
feed three consumers: debugging, the recovery-timeline figure (Fig. 9 of
the paper), and assertions in integration tests ("the watchdog fired
before the FTD woke").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "chrome_trace_doc"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join("%s=%r" % kv for kv in sorted(self.details.items()))
        return "[%12.3f] %-18s %-24s %s" % (
            self.time, self.source, self.kind, extra)


def _noop_emit(time: float, source: str, kind: str, **details: Any) -> None:
    """Placeholder ``emit`` installed while a tracer is disabled."""


class Tracer:
    """Collects trace records; optionally filters by kind.

    A disabled tracer costs one attribute lookup plus a no-op call per
    ``emit``: toggling :attr:`enabled` swaps the instance's ``emit``
    between the recording method and a module-level no-op, so the
    hundreds of thousands of trace points in a fault-injection campaign
    are free when nobody is listening.  Hot paths may additionally guard
    on ``tracer.enabled`` to skip building the keyword arguments.
    """

    def __init__(self, enabled: bool = True,
                 kinds: Optional[set] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None):
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        self.sink = sink
        self.enabled = enabled  # property: installs the right emit

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self._enabled:
            # Restore the recording method (remove the instance shadow).
            self.__dict__.pop("emit", None)
        else:
            self.__dict__["emit"] = _noop_emit

    def emit(self, time: float, source: str, kind: str, **details: Any) -> None:
        if not self._enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, source, kind, details)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def filter(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given kind and/or source."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def first(self, kind: str) -> Optional[TraceRecord]:
        for record in self.records:
            if record.kind == kind:
                return record
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.kind == kind:
                return record
        return None

    def to_chrome_trace(self) -> str:
        """The trace as Chrome trace-event JSON (chrome://tracing).

        Every record becomes a trace event: ``ts`` is the simulated time
        (already in µs, the trace-event unit), ``pid``/``tid`` are small
        integers grouped by source (with ``process_name`` metadata so
        the UI shows the source name), ``name`` is the kind and ``args``
        carries the details.  Load the string into chrome://tracing or
        Perfetto to scrub through a recovery timeline visually.
        """
        import json

        return json.dumps(chrome_trace_doc([(None, self.records)]),
                          sort_keys=True)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    return repr(value)


def chrome_trace_doc(
        runs: Iterable[Tuple[Optional[str], Iterable[TraceRecord]]],
) -> Dict[str, Any]:
    """Build one Chrome trace-event document from one or more record sets.

    ``runs`` is a sequence of ``(label, records)`` pairs; each distinct
    ``(label, source)`` becomes its own Perfetto process with a stable
    small-integer pid (assigned 1, 2, ... in run order, sources sorted
    within a run) and a ``process_name``/``thread_name`` metadata event
    naming it ``label/source`` (or just ``source`` when the label is
    None).

    Records are exported as instant events unless their details carry
    the reserved keys ``_ph`` (the trace-event phase — e.g. ``B``/``E``
    duration spans or ``b``/``n``/``e`` async flow events), ``_cat``
    (the event category) or ``_id`` (the flow/async id).  When ``_ph``
    is present a ``name`` detail overrides the event name (the record's
    kind otherwise).  Reserved and consumed keys are stripped from
    ``args``; non-JSON detail values fall back to ``repr``.
    """
    runs = [(label, list(records)) for label, records in runs]
    pids: Dict[Tuple[Optional[str], str], int] = {}
    events: List[Dict[str, Any]] = []
    for label, records in runs:
        for source in sorted({record.source for record in records}):
            pid = pids[(label, source)] = len(pids) + 1
            name = source if label is None else "%s/%s" % (label, source)
            for meta in ("process_name", "thread_name"):
                events.append({"name": meta, "ph": "M", "pid": pid,
                               "tid": pid, "args": {"name": name}})
    for label, records in runs:
        for record in records:
            pid = pids[(label, record.source)]
            details = record.details
            ph = details.get("_ph")
            name = record.kind
            consumed = {"_ph", "_cat", "_id"}
            if ph is not None and "name" in details:
                name = details["name"]
                consumed.add("name")
            event: Dict[str, Any] = {
                "name": name,
                "ph": ph if ph is not None else "i",
                "ts": record.time,
                "pid": pid,
                "tid": pid,
                "args": {key: _json_safe(value)
                         for key, value in details.items()
                         if key not in consumed},
            }
            if ph is None:
                event["s"] = "t"        # thread-scoped instant
            if "_cat" in details:
                event["cat"] = str(details["_cat"])
            if "_id" in details:
                # Perfetto correlates async events globally by (cat, id);
                # prefix with the run label so same-numbered flows from
                # different runs don't get stitched together.
                raw = details["_id"]
                event["id"] = raw if label is None \
                    else "%s:%s" % (label, raw)
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
