"""The network fault plane: links and switches as fault targets.

The paper scopes fault tolerance to NIC-processor hangs and leaves link
and switch failures to "Myrinet's CRC and remapping machinery"; this
module is the injection side of exercising that machinery.  A
:class:`NetworkFaultPlane` wraps one :class:`~repro.net.fabric.Fabric`
and can — immediately or at a scheduled simulated time — sever or flap a
link, kill a switch port, or install CRC-level packet corruption, drops
and duplications on a link.

Determinism: every stochastic decision draws from a per-component child
of the plane's :class:`~repro.sim.SeededRng` (keyed by the component's
stable index in the fabric), so adding a corruptor to one link never
perturbs another link's stream and same-seed runs are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..net.fabric import Fabric
from ..net.link import Link
from ..net.switch import Switch, SwitchPort
from ..sim import SeededRng, Simulator, Tracer

__all__ = ["NetworkFaultPlane", "FaultAction"]

# Placeholder arming time for branch execution: far beyond any
# experiment horizon, so an un-adopted placeholder can never fire.
_FAR_FUTURE = 1e15


@dataclass
class FaultAction:
    """Audit record of one fault-plane action (deterministic order)."""

    at: float
    action: str
    target: str


class _ArmSlot:
    """One branch placeholder: a parked waiter awaiting adoption."""

    __slots__ = ("fn", "name", "process", "timeout")

    def __init__(self, fn, name: str):
        self.fn = fn
        self.name = name
        self.process = None
        self.timeout = None


class NetworkFaultPlane:
    """Injects link/switch faults into one fabric."""

    def __init__(self, sim: Simulator, fabric: Fabric, rng: SeededRng,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.fabric = fabric
        self.rng = rng
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.actions: List[FaultAction] = []
        # Branch-execution support (see repro.ckpt.branch): in capture
        # mode _schedule records (at, fn, name) instead of arming;
        # branch slots are placeholder waiters a forked child later
        # adopts by rewriting their wheel entries to true fire times.
        self._capture: Optional[list] = None
        self._branch_slots: Optional[List[_ArmSlot]] = None

    # -- component addressing -------------------------------------------------

    def link_index(self, link: Link) -> int:
        return self.fabric.links.index(link)

    def link_rng(self, link: Link) -> SeededRng:
        """The deterministic per-link child stream."""
        return self.rng.spawn("link%d" % self.link_index(link))

    def scenario_rng(self, name: str) -> SeededRng:
        """A deterministic child stream for one compound scenario.

        Compound scenarios (rack loss, cascades) draw victims and
        stagger times from their own named child, so adding a scenario
        to a campaign never perturbs the draws of another.
        """
        return self.rng.spawn("scenario/%s" % name)

    def links_on_route(self, src_node: int,
                       route: Sequence[int]) -> List[Link]:
        """The links a source-routed packet from ``src_node`` traverses.

        Walks the fabric the way the switches would (route bytes are
        absolute output ports) without sending anything.  Lets an
        experiment target the link actually carrying a flow instead of
        guessing — e.g. ``inter_switch_links()`` ∩ ``links_on_route()``
        finds the in-use uplink.
        """
        port = self.fabric.nic_ports[src_node]
        links = [port.link]
        end = port.link.other(port)
        for byte in route:
            if not isinstance(end, SwitchPort):
                break
            out = end.switch.ports[byte]
            if out.link is None:
                break
            links.append(out.link)
            end = out.link.other(out)
        return links

    def _record(self, action: str, target: str) -> None:
        self.actions.append(FaultAction(self.sim.now, action, target))
        self.tracer.emit(self.sim.now, "netfaults", action, target=target)

    def _schedule(self, at: float, fn, name: str) -> None:
        """Run ``fn()`` at absolute simulated time ``at``."""
        if self._capture is not None:
            self._capture.append((at, fn, name))
            return
        delay = at - self.sim.now
        if delay <= 0:
            fn()
            return

        def waiter() -> Generator:
            yield self.sim.timeout(delay)
            fn()

        self.sim.spawn(waiter(), name="netfaults.%s" % name)

    # -- branch execution (repro.ckpt.branch) ---------------------------------

    def begin_capture(self) -> None:
        """Record scheduled actions instead of arming them.

        Used twice by branch execution: in the parent to learn the shape
        of a run's fault schedule (how many arms, what names) without
        touching the wheel, and in the child to collect the true
        ``(at, fn, name)`` tuples that :meth:`adopt_captured` grafts
        onto the parent's placeholders.
        """
        if self._capture is not None:
            raise RuntimeError("fault-plane capture already active")
        self._capture = []

    def drain_capture(self) -> list:
        captured, self._capture = self._capture, None
        if captured is None:
            raise RuntimeError("fault-plane capture was not active")
        return captured

    def arm_branch_slots(self, captured: Sequence) -> None:
        """Arm one far-future placeholder waiter per captured action.

        Each placeholder consumes exactly the seq/ids a cold run's
        ``_schedule`` arm would — one process spawn (whose bootstrap
        resume takes a heap entry) plus one timeout allocated at first
        resume — so the parent's event wheel stays entry-for-entry
        congruent with a cold boot.  A forked child later calls
        :meth:`adopt_captured` to rewrite the placeholders to its own
        fault schedule; in the parent they sit parked at ``_FAR_FUTURE``
        and never fire.
        """
        if self._branch_slots is not None:
            raise RuntimeError("branch slots already armed")
        sim = self.sim
        slots: List[_ArmSlot] = []
        for at, fn, name in captured:
            if at <= sim.now:
                raise RuntimeError(
                    "cannot branch-arm a fault action in the past "
                    "(at=%r, now=%r)" % (at, sim.now))
            slot = _ArmSlot(fn, name)

            def waiter(slot: _ArmSlot = slot) -> Generator:
                slot.timeout = self.sim.timeout(_FAR_FUTURE - self.sim.now)
                yield slot.timeout
                slot.fn()

            slot.process = sim.spawn(waiter(),
                                     name="netfaults.%s" % name)
            slots.append(slot)
        self._branch_slots = slots

    def adopt_captured(self, captured: Sequence) -> None:
        """Graft a child's true fault schedule onto the placeholders.

        For placeholder *k* and captured action *k*: swap in the real
        callback, rename the waiter process, and rewrite the
        placeholder timeout's wheel entry from ``(_FAR_FUTURE, seq)``
        to ``(at_k, seq)``.  ``Timeout`` objects store no time of their
        own — the fire time lives only in the heap tuple — so rewriting
        the tuple and re-heapifying is sufficient and exact: pop order
        is decided by the globally unique ``(when, seq)`` key, and the
        seq values are the very ones a cold run's arms would have drawn.
        """
        import heapq
        slots = self._branch_slots
        if slots is None:
            raise RuntimeError("no branch slots armed")
        if len(captured) != len(slots):
            raise RuntimeError(
                "branch schedule shape mismatch: %d placeholder(s) armed "
                "but child captured %d action(s) — fault-action counts "
                "must be seed-independent within a branch group"
                % (len(slots), len(captured)))
        rewrites = {}
        for slot, (at, fn, name) in zip(slots, captured):
            if slot.timeout is None:
                raise RuntimeError(
                    "placeholder %r not yet armed (run the simulator past "
                    "the arm point before adopting)" % (slot.name,))
            slot.fn = fn
            slot.name = name
            slot.process.name = "netfaults.%s" % name
            rewrites[id(slot.timeout)] = at
        queue = self.sim._queue
        changed = 0
        for i, entry in enumerate(queue):
            at = rewrites.get(id(entry[2]))
            if at is not None:
                queue[i] = (at, entry[1], entry[2])
                changed += 1
        if changed != len(rewrites):
            raise RuntimeError(
                "only %d of %d placeholder timeouts found on the wheel"
                % (changed, len(rewrites)))
        heapq.heapify(queue)
        self._branch_slots = None

    def ckpt_state(self) -> dict:
        """Snapshot contract: the audit log and branch bookkeeping."""
        return {
            "actions": [[a.at, a.action, a.target] for a in self.actions],
            "branch_slots": (len(self._branch_slots)
                             if self._branch_slots is not None else 0),
            "capturing": self._capture is not None,
        }

    # -- link faults ----------------------------------------------------------

    def cut_link(self, link: Link, at: Optional[float] = None) -> None:
        """Sever a link (now, or at simulated time ``at``)."""
        def act() -> None:
            link.cut()
            self._record("cut_link", link.describe_ends())
        self._schedule(at if at is not None else self.sim.now, act, "cut")

    def restore_link(self, link: Link, at: Optional[float] = None) -> None:
        def act() -> None:
            link.restore()
            self._record("restore_link", link.describe_ends())
        self._schedule(at if at is not None else self.sim.now, act,
                       "restore")

    def flap_link(self, link: Link, at: float, down_for: float) -> None:
        """Sever a link at ``at`` and restore it ``down_for`` later."""
        self.cut_link(link, at=at)
        self.restore_link(link, at=at + down_for)

    # -- switch faults --------------------------------------------------------

    def kill_switch_port(self, switch: Switch, port: int,
                         at: Optional[float] = None) -> None:
        """Kill a switch port (traffic through it silently dropped)."""
        def act() -> None:
            switch.kill_port(port)
            self._record("kill_switch_port", "%s.p%d" % (switch.name, port))
        self._schedule(at if at is not None else self.sim.now, act, "kill")

    def revive_switch_port(self, switch: Switch, port: int,
                           at: Optional[float] = None) -> None:
        def act() -> None:
            switch.revive_port(port)
            self._record("revive_switch_port",
                         "%s.p%d" % (switch.name, port))
        self._schedule(at if at is not None else self.sim.now, act,
                       "revive")

    # -- compound faults ------------------------------------------------------

    def kill_switch(self, switch: Switch,
                    at: Optional[float] = None) -> None:
        """Kill every cabled port of a switch at once (rack/spine loss).

        Models a whole switch dying — power, backplane — in one
        instant: everything behind a leaf partitions simultaneously and
        every equal-cost path through a spine vanishes at once.
        """
        def act() -> None:
            for port in switch.ports:
                if port.link is not None:
                    switch.kill_port(port.index)
            self._record("kill_switch", switch.name)
        self._schedule(at if at is not None else self.sim.now, act,
                       "kill-sw")

    def revive_switch(self, switch: Switch,
                      at: Optional[float] = None) -> None:
        def act() -> None:
            for port in list(switch.dead_ports):
                switch.revive_port(port)
            self._record("revive_switch", switch.name)
        self._schedule(at if at is not None else self.sim.now, act,
                       "revive-sw")

    def cascade_cut(self, links: Sequence[Link], at: float,
                    stagger_us: float = 0.0) -> None:
        """Sever several links in sequence, ``stagger_us`` apart.

        ``stagger_us = 0`` is a correlated simultaneous failure; a
        positive stagger models a spreading fault (each cut lands while
        recovery from the previous one may still be in flight).
        """
        for index, link in enumerate(links):
            self.cut_link(link, at=at + index * stagger_us)

    # -- packet-level faults --------------------------------------------------

    def corrupt_on_link(self, link: Link, rate: float,
                        modes: Sequence[str] = ("corrupt", "drop",
                                                "duplicate"),
                        at: Optional[float] = None,
                        until: Optional[float] = None) -> None:
        """Install a stochastic packet mangler on ``link``.

        Each packet crossing the link (either direction) is hit with
        probability ``rate``; the failure mode is drawn uniformly from
        ``modes`` ('corrupt' flips a payload bit without fixing the CRC,
        'drop' loses the packet, 'duplicate' delivers it twice).  The
        per-link RNG child makes the decision sequence deterministic.
        Active from ``at`` (default now) until ``until`` (default
        forever); :meth:`clear_link_faults` removes it early.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        bad = [m for m in modes if m not in ("corrupt", "drop", "duplicate")]
        if bad:
            raise ValueError("unknown corruption mode(s): %r" % (bad,))
        link_rng = self.link_rng(link)

        def fault_filter(packet):
            if link_rng.random() >= rate:
                return False
            mode = modes[link_rng.randrange(len(modes))]
            return True if mode == "drop" else mode

        def install() -> None:
            link.fault_filter = fault_filter
            self._record("corrupt_on_link",
                         "%s rate=%.3f" % (link.describe_ends(), rate))

        self._schedule(at if at is not None else self.sim.now, install,
                       "corrupt")
        if until is not None:
            def remove() -> None:
                if link.fault_filter is fault_filter:
                    link.fault_filter = None
                    self._record("clear_link_faults", link.describe_ends())
            self._schedule(until, remove, "uncorrupt")

    def clear_link_faults(self, link: Link) -> None:
        link.fault_filter = None
        self._record("clear_link_faults", link.describe_ends())
