"""Correlated-fault campaigns on Clos/fat-tree fabrics (``closfault``).

The flat netfault campaign (:mod:`repro.netfaults.campaign`) cuts one
link of a two-switch ring; multi-tier fabrics fail differently — whole
switches die, several equal-cost paths vanish at once, repairs land
while recovery from the previous fault is still in flight.  This module
drives those *compound* scenarios over the shared netfault machinery
(same workload, same outcome classification, same Table-3-style
recovery breakdown) on fat-tree/Clos clusters, as an ``ftgm`` × ``gm``
flavor grid so each row shows what the fault-tolerance machinery buys:

* ``rack-loss`` — the destination's edge (leaf) switch dies whole and
  comes back ``rack_down_us`` later: a genuine partition no reroute can
  bridge, recovered by Go-Back-N retransmission after the repair;
* ``spine-loss`` — the mid-route spine/core switch dies, killing every
  path through it at once; the hierarchical mapper reroutes over the
  surviving equal-cost paths (the positive ECMP-recovery case);
* ``cascade`` — staged severing of the uplinks on the watched route,
  each cut landing while the reroute from the previous one may still be
  converging;
* ``repair-flap`` — an uplink is cut, repaired mid-recovery, and a
  second uplink cut right after: repair-during-repair.

Scenario victims are drawn from :meth:`NetworkFaultPlane.scenario_rng`
children, so adding a scenario to a campaign never perturbs another's
draws and same-seed campaigns render byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster import build_cluster
from ..net.fabric import clos_dimensions, fat_tree_dimensions
from ..net.switch import SwitchPort
from ..sim import SeededRng
from .campaign import (
    NetFaultCampaignResult,
    NetFaultConfig,
    NetFaultOutcome,
    netfault_group,
    plan_netfault_runs,
    resume_netfault,
)

__all__ = [
    "CLOS_SCENARIOS",
    "ClosFaultConfig",
    "ClosFaultCampaignResult",
    "cross_fabric_pairs",
    "inject_closfault",
    "boot_closfault",
    "resume_closfault",
    "closfault_family",
    "closfault_group",
    "plan_closfault_runs",
    "run_closfault_injection",
]

CLOS_SCENARIOS = ["rack-loss", "spine-loss", "cascade", "repair-flap"]

#: Hop budget for detector escalation scouts: 5 hops reaches any host
#: of a 3-tier fat-tree (edge-agg-core-agg-edge); the mapper default (8)
#: would flood every equal-cost path three tiers deep.
DETECTOR_SCOUT_TTL = 5


@dataclass
class ClosFaultConfig(NetFaultConfig):
    """One closfault run: a compound scenario on a multi-tier fabric.

    ``scenario`` holds the campaign cell name (``"rack-loss/ftgm"``);
    the fault kind in front of the slash selects the injection.
    """

    flavor: str = "ftgm"
    # The default 6-message/2ms-gap stream spans ~12 ms; the inherited
    # (2, 14) ms window could land a fault after the last delivery,
    # testing nothing.  Keep every compound fault mid-stream.
    fault_window_us: Tuple[float, float] = (2_000.0, 9_000.0)
    rack_down_us: float = 30_000.0     # rack-loss repair delay
    cascade_stagger_us: float = 3_000.0
    flap_revive_us: float = 8_000.0    # repair-flap: cut -> repair gap
    second_cut_us: float = 16_000.0    # repair-flap: second cut offset

    @property
    def kind(self) -> str:
        return self.scenario.split("/")[0]


def cross_fabric_pairs(n_nodes: int, topology: str = "fat-tree",
                       radix: int = 8, n_spines: int = 2,
                       n_pairs: int = 2) -> List[Tuple[int, int]]:
    """Deterministic (src, dst) pairs crossing the fabric's top tier.

    Each dst sits one pod (fat-tree) or one rack (Clos) over from its
    src at the same rack offset, so every flow traverses the
    spine/core stage — the stage the compound scenarios attack.  All
    endpoints are distinct (the campaign's sender/receiver processes
    claim fixed port ids per node).
    """
    if topology == "fat-tree":
        half, _pods = fat_tree_dimensions(n_nodes, radix)
        span = half * half
        rack = half
    elif topology == "clos":
        rack, _leaves = clos_dimensions(n_nodes, n_spines, radix)
        span = rack
    else:
        raise ValueError("closfault needs a clos or fat-tree fabric, "
                         "got %r" % (topology,))
    # Partially-populated fabrics may not fill one pod; fall back to the
    # widest stride that still crosses a switch boundary.
    if span >= n_nodes:
        span = rack if rack < n_nodes else n_nodes // 2
    if span < 1:
        raise ValueError("cluster of %d nodes too small for cross-rack "
                         "pairs" % n_nodes)
    pairs: List[Tuple[int, int]] = []
    used: set = set()
    src = 0
    while len(pairs) < n_pairs:
        if src >= n_nodes:
            raise ValueError(
                "%d nodes cannot host %d disjoint cross-fabric pairs"
                % (n_nodes, n_pairs))
        dst = (src + span) % n_nodes
        if src in used or dst in used or src == dst:
            src += 1
            continue
        pairs.append((src, dst))
        used.update((src, dst))
        src += 1
    return pairs


# -- route inspection ----------------------------------------------------------


def _switches_on_route(fabric, cluster, src: int, dst: int) -> List:
    """The switches a packet from ``src`` to ``dst`` traverses, in hop
    order (walks the installed source route without sending anything)."""
    route = cluster[src].mcp.routing_table.get(dst)
    if not route:
        return []
    port = fabric.nic_ports[src]
    end = port.link.other(port)
    switches = []
    for byte in route:
        if not isinstance(end, SwitchPort):
            break
        switches.append(end.switch)
        out = end.switch.ports[byte]
        if out.link is None:
            break
        end = out.link.other(out)
    return switches


def _edge_of(fabric, node_id: int):
    """The leaf/edge switch a host hangs off."""
    port = fabric.nic_ports[node_id]
    return port.link.other(port).switch


# -- the compound injections ---------------------------------------------------


def inject_closfault(config: ClosFaultConfig, plane, cluster,
                     rng: SeededRng, fault_at: float) -> None:
    """Arm one compound scenario against the first workload pair."""
    kind = config.kind
    src, dst = config.pairs[0]
    srng = plane.scenario_rng(kind)
    route = cluster[src].mcp.routing_table.get(dst) or []
    uplinks = set(plane.fabric.inter_switch_links())
    on_path = [link for link in plane.links_on_route(src, route)
               if link in uplinks]
    switches = _switches_on_route(plane.fabric, cluster, src, dst)

    if kind == "rack-loss":
        edge = _edge_of(plane.fabric, dst)
        plane.kill_switch(edge, at=fault_at)
        plane.revive_switch(edge, at=fault_at + config.rack_down_us)
    elif kind == "spine-loss":
        # The mid-route switch is the top-tier one (leaf-spine-leaf on
        # a Clos, edge-agg-core-agg-edge on a fat-tree).
        if not switches:
            raise ValueError("no route %d -> %d to attack" % (src, dst))
        plane.kill_switch(switches[len(switches) // 2], at=fault_at)
    elif kind == "cascade":
        if not on_path:
            raise ValueError("route %d -> %d has no uplinks" % (src, dst))
        plane.cascade_cut(on_path[:2], at=fault_at,
                          stagger_us=config.cascade_stagger_us)
    elif kind == "repair-flap":
        if not on_path:
            raise ValueError("route %d -> %d has no uplinks" % (src, dst))
        first = on_path[0]
        plane.cut_link(first, at=fault_at)
        plane.restore_link(first, at=fault_at + config.flap_revive_us)
        others = [link for link in on_path[1:]] or [first]
        second = others[srng.randrange(len(others))]
        plane.cut_link(second, at=fault_at + config.second_cut_us)
    else:
        raise ValueError("unknown closfault scenario %r" % (kind,))


# -- boot / resume (fork-server compatible) ------------------------------------


def closfault_family(config: ClosFaultConfig):
    """Boot-sharing key: runs of one cell shape share a booted fabric."""
    return ("closfault", config.flavor, config.n_nodes, config.topology,
            config.n_switches, config.radix)


def closfault_group(config: ClosFaultConfig):
    """Branch-group key: the netfault prefix fields plus the closfault
    scenario knobs (all of which shape the fault schedule a child
    replays, none of which touch the shared pre-fault trajectory)."""
    return netfault_group(config) + (
        config.flavor, config.rack_down_us, config.cascade_stagger_us,
        config.flap_revive_us, config.second_cut_us)


def plan_closfault_runs(cluster, items):
    """Closfault runs replay the same (rng, plane, fault-time) draw
    sequence as flat netfault runs; the planner is shared."""
    return plan_netfault_runs(cluster, items)


def boot_closfault(config: ClosFaultConfig):
    return build_cluster(config.n_nodes, flavor=config.flavor,
                         seed=config.seed, topology=config.topology,
                         n_switches=config.n_switches,
                         radix=config.radix or None)


def resume_closfault(cluster, config: ClosFaultConfig,
                     branch=None, pause_at=None):
    """Inject a compound scenario and classify, on a booted cluster.

    Detectors are armed only on workload-active nodes (with the 3-tier
    scout TTL): on a hundreds-of-nodes fabric the other nodes stay
    parked — a sweeping detector per idle node would keep every MCP
    awake for nothing.  ``branch``/``pause_at`` pass straight through to
    :func:`repro.netfaults.campaign.resume_netfault`.
    """
    active = sorted({node for pair in (config.pairs or ())
                     for node in pair})
    return resume_netfault(
        cluster, config,
        inject_fn=inject_closfault,
        detector_nodes=active or None,
        detector_kwargs={"scout_ttl": DETECTOR_SCOUT_TTL},
        branch=branch, pause_at=pause_at)


def run_closfault_injection(config: ClosFaultConfig) -> NetFaultOutcome:
    return resume_closfault(boot_closfault(config), config)


# -- campaign aggregate --------------------------------------------------------


class ClosFaultCampaignResult(NetFaultCampaignResult):
    """Netfault aggregate with the closfault cell ordering."""

    TITLE = "Closfault campaign"

    def scenarios(self) -> List[str]:
        order = ["%s/%s" % (kind, flavor) for kind in CLOS_SCENARIOS
                 for flavor in ("ftgm", "gm")]
        present = [cell for cell in order if cell in self.counts]
        extras = sorted(cell for cell in self.counts
                        if cell not in present)
        return present + extras
