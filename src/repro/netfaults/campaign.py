"""Netfault campaigns: link/switch fault sweeps with recovery outcomes.

One run: build a fresh ≥4-node multi-switch FTGM cluster, start a
cross-switch message workload, arm the fault plane and the per-node path
detectors, inject one scenario's fault mid-stream, and observe until the
workload resolves (or a horizon passes).  Outcomes are bucketed into
four categories — recovered-by-reroute, recovered-by-retransmit, lost,
deadlocked — and the reroute-recovered runs contribute a recovery-latency
breakdown analogous to the paper's Table 3 (detection, daemon wakeup,
mapper discovery, table distribution, traffic resumption).

Every run builds its own simulator from its own seed and shares nothing
with its siblings, so campaigns parallelize exactly like the SWIFI
campaigns in :mod:`repro.faults.campaign` — both fan out through the
experiment engine's public :func:`repro.exp.runner.run_many` — and
same-seed campaigns render byte-identical tables.  The campaign is also
registered as the ``netfaults`` experiment (``repro run netfaults``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster import build_cluster
from ..obs.harvest import harvest_cluster
from ..payload import Payload
from ..sim import SeededRng
from .detector import arm_detectors
from .plane import NetworkFaultPlane

__all__ = [
    "NET_SCENARIOS",
    "NET_CATEGORY_ORDER",
    "NetCategory",
    "NetFaultConfig",
    "NetFaultOutcome",
    "NetFaultCampaignResult",
    "inject_scenario",
    "run_netfault_injection",
    "boot_netfault",
    "resume_netfault",
    "netfault_family",
    "netfault_group",
    "plan_netfault_runs",
    "run_netfaults_campaign",
]

NET_SCENARIOS = ["link-cut", "link-flap", "switch-port-kill", "corrupt"]


class NetCategory:
    REROUTE = "Recovered by reroute"
    RETRANSMIT = "Recovered by retransmit"
    LOST = "Messages Lost"
    DEADLOCKED = "Deadlocked"


NET_CATEGORY_ORDER = [
    NetCategory.REROUTE,
    NetCategory.RETRANSMIT,
    NetCategory.LOST,
    NetCategory.DEADLOCKED,
]


@dataclass
class NetFaultConfig:
    """Parameters of one netfault injection run."""

    run_id: int
    seed: int
    scenario: str                     # one of NET_SCENARIOS
    n_nodes: int = 4
    topology: str = "ring"
    n_switches: int = 2
    radix: int = 0                    # Clos/fat-tree port count; 0 = default
    # Directed workload endpoints.  None keeps the historic sweep shape
    # (every node i paired with i + n/2, both directions); large-fabric
    # campaigns name a handful of explicit cross-rack (src, dst) pairs
    # instead of flooding hundreds of nodes with traffic.
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    messages: int = 12                # per directed pair
    message_bytes: int = 512
    message_gap_us: float = 2_000.0   # pacing, so the fault lands mid-stream
    fault_at_us: Optional[float] = None   # None: random in the window below
    fault_window_us: Tuple[float, float] = (2_000.0, 14_000.0)
    flap_down_us: float = 12_000.0
    corrupt_rate: float = 0.25
    observe_horizon_us: float = 20_000_000.0


@dataclass
class NetFaultOutcome:
    """Everything observed during one netfault run."""

    run_id: int
    scenario: str
    fault_at: float
    # Workload accounting.
    messages_expected: int = 0
    delivered_once: int = 0
    duplicates: int = 0
    missing: int = 0
    sends_ok: int = 0
    sends_errored: int = 0
    workload_completed: bool = False
    resolved: bool = False
    # Recovery machinery observations.
    nic_resets: int = 0
    card_recoveries: int = 0
    reroutes: int = 0
    reroutes_failed: int = 0
    verdicts: List[Tuple[float, int, str]] = field(default_factory=list)
    # Reroute latency timeline (first successful reroute), all absolute.
    verdict_at: float = -1.0
    reroute_woken_at: float = -1.0
    reroute_mapped_at: float = -1.0
    reroute_installed_at: float = -1.0
    first_delivery_after_install: float = -1.0
    category: str = field(default="", init=False)

    def finalize(self) -> "NetFaultOutcome":
        self.category = _classify(self)
        return self

    def latency_segments(self) -> Optional[List[Tuple[str, float]]]:
        """(label, µs) rows of the reroute recovery timeline, or None."""
        if self.category != NetCategory.REROUTE or self.verdict_at < 0:
            return None
        rows = [
            ("fault -> path-dead verdict", self.verdict_at - self.fault_at),
            ("verdict -> FTD wakeup",
             self.reroute_woken_at - self.verdict_at),
            ("mapper discovery",
             self.reroute_mapped_at - self.reroute_woken_at),
            ("table distribution",
             self.reroute_installed_at - self.reroute_mapped_at),
        ]
        if self.first_delivery_after_install >= 0:
            rows.append(("resume (first delivery)",
                         self.first_delivery_after_install
                         - self.reroute_installed_at))
        return rows


def _classify(outcome: NetFaultOutcome) -> str:
    completed = (outcome.workload_completed
                 and outcome.duplicates == 0
                 and outcome.missing == 0)
    if completed:
        if outcome.reroutes - outcome.reroutes_failed > 0:
            return NetCategory.REROUTE
        return NetCategory.RETRANSMIT
    if outcome.resolved:
        # Every send resolved (some errored) and the receivers are done
        # waiting: data went missing or was duplicated, but nothing is
        # stuck.
        return NetCategory.LOST
    return NetCategory.DEADLOCKED


# -- one run -------------------------------------------------------------------


def _pick_fault_time(config: NetFaultConfig, rng: SeededRng) -> float:
    if config.fault_at_us is not None:
        return config.fault_at_us
    lo, hi = config.fault_window_us
    return rng.uniform(lo, hi)


def inject_scenario(plane: NetworkFaultPlane, cluster, rng: SeededRng,
                    fault_at: float, scenario: str, *, n_nodes: int,
                    flap_down_us: float = 12_000.0,
                    corrupt_rate: float = 0.25,
                    pair: Optional[Tuple[int, int]] = None) -> None:
    """Arm ``scenario`` on the uplink carrying cross-switch traffic.

    The victim is the inter-switch link on the installed route of the
    watched cross-switch pair — by default node 0 -> node n/2, the
    first pair of the historic sweep; campaigns on larger fabrics pass
    the (src, dst) pair their workload actually drives.  Cutting an
    idle uplink would test nothing.  Shared by the netfaults campaign
    and the ``slo-chaos`` load-plane overlay (:mod:`repro.load.chaos`).
    """
    uplinks = plane.fabric.inter_switch_links()
    if not uplinks:
        raise ValueError("fabric has no inter-switch links to fault")
    src, dst = pair if pair is not None else (0, n_nodes // 2)
    route = cluster[src].mcp.routing_table.get(dst)
    on_path = [link for link in plane.links_on_route(src, route or [])
               if link in uplinks]
    victims = on_path or uplinks
    link = victims[rng.randrange(len(victims))]
    if scenario == "link-cut":
        plane.cut_link(link, at=fault_at)
    elif scenario == "link-flap":
        plane.flap_link(link, at=fault_at, down_for=flap_down_us)
    elif scenario == "switch-port-kill":
        # Kill the switch port at one (deterministically chosen) end of
        # the uplink.
        end = link.end_a if rng.random() < 0.5 else link.end_b
        plane.kill_switch_port(end.switch, end.index, at=fault_at)
    elif scenario == "corrupt":
        plane.corrupt_on_link(link, rate=corrupt_rate, at=fault_at)
    else:
        raise ValueError("unknown scenario %r" % (scenario,))


def _inject(config: NetFaultConfig, plane: NetworkFaultPlane,
            cluster, rng: SeededRng, fault_at: float) -> None:
    inject_scenario(plane, cluster, rng, fault_at, config.scenario,
                    n_nodes=config.n_nodes,
                    flap_down_us=config.flap_down_us,
                    corrupt_rate=config.corrupt_rate,
                    pair=config.pairs[0] if config.pairs else None)


def netfault_family(config: NetFaultConfig):
    """Key of the boot all runs with this config's fabric can share.

    The boot depends on the cluster shape only — every scenario of a
    sweep reuses the same booted fabric.
    """
    return (config.n_nodes, config.topology, config.n_switches,
            config.radix)


def netfault_group(config: NetFaultConfig):
    """Key of the live prefix all runs in a branch group can share.

    Everything except the per-run identity (run_id, seed): the workload
    is keyed by message indices, never by the run seed, so two runs
    differing only in seed walk the same trajectory until their faults
    fire — which is the whole branch-at-injection premise.
    """
    return (config.scenario, config.n_nodes, config.topology,
            config.n_switches, config.radix, config.pairs,
            config.messages, config.message_bytes,
            config.message_gap_us, config.fault_at_us,
            config.fault_window_us, config.flap_down_us,
            config.corrupt_rate, config.observe_horizon_us)


def plan_netfault_runs(cluster, items):
    """Resolve each pending run's fault instant against the booted state.

    Mirrors :func:`resume_netfault`'s draw order exactly — RNG children
    are keyed by (seed, purpose) so spawning the plane stream first and
    drawing the fault time second reproduces the cold sequence bit for
    bit; the gate key **is** that replayed fault time.
    """
    from ..ckpt.branch import BranchPlan

    t0 = cluster.sim.now
    plans = []
    for index, config in items:
        crng = SeededRng(config.seed, "netfault/%d" % config.run_id)
        crng.spawn("plane")
        plans.append(BranchPlan(index, config,
                                t0 + _pick_fault_time(config, crng)))
    return plans


def boot_netfault(config: NetFaultConfig):
    """Build and boot the shared pre-fault prefix (seed-independent)."""
    return build_cluster(config.n_nodes, flavor="ftgm",
                         seed=config.seed, topology=config.topology,
                         n_switches=config.n_switches,
                         radix=config.radix or None)


def run_netfault_injection(config: NetFaultConfig) -> NetFaultOutcome:
    """Run one netfault experiment and classify the outcome."""
    return resume_netfault(boot_netfault(config), config)


def resume_netfault(cluster, config: NetFaultConfig,
                    inject_fn: Optional[Callable] = None,
                    detector_nodes: Optional[List[int]] = None,
                    detector_kwargs: Optional[Dict] = None,
                    branch=None, pause_at: Optional[float] = None):
    """Arm, inject, observe and classify on an already-booted cluster.

    ``inject_fn(config, plane, cluster, rng, fault_at)`` overrides the
    default :func:`inject_scenario` dispatch — the Clos campaign's
    compound scenarios (rack loss, cascades) plug in here while reusing
    the whole workload/observe/classify machinery.  ``detector_nodes``
    and ``detector_kwargs`` pass through to :func:`arm_detectors`: on a
    hundreds-of-nodes fabric only the workload-active nodes are armed,
    so idle nodes can stay parked.

    ``branch`` (a :class:`repro.ckpt.branch.BranchController`) turns the
    run into a branch group's shared prefix: the parent arms far-future
    *placeholder* waiters (same wheel entries, same tie-break seqs as a
    cold arm), drives the wheel to each run's fault instant, forks, and
    the child grafts its own fault schedule onto the placeholders.
    ``pause_at`` instead parks the run at a simulated instant and
    returns a :class:`repro.ckpt.PausedRun`.
    """
    rng = SeededRng(config.seed, "netfault/%d" % config.run_id)
    sim = cluster.sim
    # The plane mutates switches and links, which live on the fabric's
    # wheel under sharded execution — co-locate its processes with them.
    plane = NetworkFaultPlane(cluster.fabric_sim, cluster.fabric,
                              rng.spawn("plane"), tracer=cluster.tracer)
    detectors = arm_detectors(cluster, nodes=detector_nodes,
                              **(detector_kwargs or {}))
    inject = inject_fn if inject_fn is not None else _inject
    start_at = sim.now
    fault_at = start_at + _pick_fault_time(config, rng)
    if branch is not None:
        # Learn the template schedule's shape without touching the
        # wheel, then arm one placeholder per action at the exact code
        # position a cold run arms its waiters — identical spawn/seq
        # consumption, parked fire times.
        plane.begin_capture()
        inject(config, plane, cluster, rng.spawn("target"), fault_at)
        plane.arm_branch_slots(plane.drain_capture())
    else:
        inject(config, plane, cluster, rng.spawn("target"), fault_at)

    # Cross-switch directed pairs, both ways.  Historic shape: node i
    # <-> node i + n/2; explicit ``pairs`` on large fabrics.
    if config.pairs is not None:
        pairs = [tuple(p) for p in config.pairs]
    else:
        half = config.n_nodes // 2
        pairs = [(i, i + half) for i in range(half)]
    directed = [(a, b) for a, b in pairs] + [(b, a) for a, b in pairs]
    expected = {
        (src, dst, i): Payload.pattern(config.message_bytes,
                                       seed=src * 100_000 + dst * 1_000 + i)
        for src, dst in directed for i in range(config.messages)
    }
    state = {
        "send_done": 0, "send_err": 0,
        "deliveries": {},          # (src, dst, i) -> count
        "delivery_times": [],      # (time, src, dst, i)
        "receivers_done": 0,
    }
    total_sends = len(directed) * config.messages

    def sender(node, dest_node):
        port = yield from node.driver.open_port(1)

        def cb(outcome):
            if outcome.ok:
                state["send_done"] += 1
            else:
                state["send_err"] += 1

        for i in range(config.messages):
            payload = expected[(node.node_id, dest_node, i)]
            yield from port.send(payload, dest_node, 2, callback=cb,
                                 context=i)
            # Pace the stream so the fault lands mid-conversation,
            # pumping events (callbacks, ROUTE_CHANGED, FAULT_DETECTED)
            # for the whole gap — receive() returns on *every* event, so
            # a single call would collapse the gap to the first SENT.
            until = sim.now + config.message_gap_us
            while sim.now < until:
                yield from port.receive(timeout=until - sim.now)
        while (state["send_done"] + state["send_err"] < total_sends
               and sim.now < config.observe_horizon_us):
            yield from port.receive(timeout=10_000.0)

    def receiver(node, src_node):
        port = yield from node.driver.open_port(2)
        for _ in range(min(config.messages, 8)):
            yield from port.provide_receive_buffer(config.message_bytes)
        provided = min(config.messages, 8)
        got = 0
        lookup = {expected[(src_node, node.node_id, i)].fingerprint: i
                  for i in range(config.messages)}
        while got < config.messages and sim.now < config.observe_horizon_us:
            event = yield from port.receive_message(timeout=500_000.0)
            if event is None:
                continue
            index = lookup.get(event.payload.fingerprint
                               if event.payload is not None else None, -1)
            key = (src_node, node.node_id, index)
            state["deliveries"][key] = state["deliveries"].get(key, 0) + 1
            state["delivery_times"].append(
                (sim.now, src_node, node.node_id, index))
            got += 1
            if provided < config.messages:
                yield from port.provide_receive_buffer(config.message_bytes)
                provided += 1
        state["receivers_done"] += 1

    for a, b in directed:
        cluster[a].host.spawn(sender(cluster[a], b),
                              "netfault-snd%d>%d" % (a, b))
        cluster[b].host.spawn(receiver(cluster[b], a),
                              "netfault-rcv%d<%d" % (b, a))

    def _done() -> bool:
        resolved = state["send_done"] + state["send_err"] >= total_sends
        return resolved and state["receivers_done"] >= len(directed)

    if branch is not None:
        def _adopt(plan):
            """Forked-child epilogue: graft this run's true schedule.

            Replays the run's private draws and its inject against a
            capture-mode proxy plane (pure: RNG children derive from
            (seed, purpose), the capture never touches the wheel), then
            rewrites the parent's placeholders to the captured times.
            """
            cfg = plan.config
            crng = SeededRng(cfg.seed, "netfault/%d" % cfg.run_id)
            proxy = NetworkFaultPlane(cluster.fabric_sim, cluster.fabric,
                                      crng.spawn("plane"),
                                      tracer=cluster.tracer)
            far = start_at + _pick_fault_time(cfg, crng)
            if far != plan.key:
                raise RuntimeError(
                    "branch plan fault time %r != replayed draw %r"
                    % (plan.key, far))
            proxy.begin_capture()
            inject(cfg, proxy, cluster, crng.spawn("target"), far)
            plane.adopt_captured(proxy.drain_capture())
            return far, proxy

        got = branch.serve_time_gates(sim, _adopt)
        if got is not None:
            # We are a forked child: become this run.
            plan, (child_fault_at, child_plane) = got
            config = plan.config
            fault_at = child_fault_at
            plane = child_plane
        # The parent falls through with its placeholders parked at
        # _FAR_FUTURE: it completes as a clean, fault-free run whose
        # outcome the executor discards.

    horizon = config.observe_horizon_us

    def drive(limit: float) -> None:
        while not _done():
            next_at = sim.peek()
            if next_at > limit:
                break
            sim.run(until=min(next_at + 1_000.0, limit))

    def finish() -> NetFaultOutcome:
        drive(horizon)
        sim.run(until=min(sim.now + 10_000.0, horizon))

        # -- observe and classify ----------------------------------------------

        outcome = NetFaultOutcome(run_id=config.run_id,
                                  scenario=config.scenario,
                                  fault_at=fault_at)
        outcome.messages_expected = len(expected)
        counts = state["deliveries"]
        outcome.delivered_once = sum(1 for key in expected
                                     if counts.get(key, 0) == 1)
        outcome.duplicates = sum(count - 1 for key, count in counts.items()
                                 if key in expected and count > 1)
        outcome.missing = sum(1 for key in expected
                              if counts.get(key, 0) == 0)
        outcome.sends_ok = state["send_done"]
        outcome.sends_errored = state["send_err"]
        outcome.workload_completed = (state["send_done"] == total_sends
                                      and outcome.delivered_once
                                      == len(expected))
        outcome.resolved = _done()
        outcome.nic_resets = sum(node.nic.resets for node in cluster.nodes)
        outcome.card_recoveries = sum(len(ftd.recoveries)
                                      for ftd in cluster.ftds())
        reroutes = [record for ftd in cluster.ftds()
                    for record in ftd.reroutes]
        outcome.reroutes = len(reroutes)
        outcome.reroutes_failed = sum(1 for r in reroutes if r.failed)
        for detector in detectors:
            outcome.verdicts.extend(detector.verdicts)
        outcome.verdicts.sort()

        good = sorted((r for r in reroutes if not r.failed),
                      key=lambda r: r.woken_at)
        if good:
            first = good[0]
            outcome.verdict_at = first.verdict_at
            outcome.reroute_woken_at = first.woken_at
            outcome.reroute_mapped_at = first.mapped_at
            outcome.reroute_installed_at = first.installed_at
            after = [t for t, _s, _d, _i in state["delivery_times"]
                     if t >= first.installed_at]
            if after:
                outcome.first_delivery_after_install = min(after)
        harvest_cluster(cluster, fault_at=fault_at)
        return outcome.finalize()

    if pause_at is not None:
        limit = min(pause_at, horizon)
        drive(limit)
        sim.run(until=limit)
        from ..ckpt.pause import PausedRun
        return PausedRun(cluster, config, {"plane": plane}, finish)
    return finish()


# -- the campaign --------------------------------------------------------------


@dataclass
class NetFaultCampaignResult:
    """Aggregate of one netfault campaign."""

    TITLE = "Netfault campaign"

    seed: int
    outcomes: List[NetFaultOutcome]
    counts: Dict[str, Dict[str, int]] = field(init=False)

    def __post_init__(self):
        self.counts = {}
        for outcome in self.outcomes:
            row = self.counts.setdefault(
                outcome.scenario,
                {category: 0 for category in NET_CATEGORY_ORDER})
            row[outcome.category] += 1

    def scenarios(self) -> List[str]:
        return [s for s in NET_SCENARIOS if s in self.counts] + \
            sorted(s for s in self.counts if s not in NET_SCENARIOS)

    def latency_breakdown(self) -> List[Tuple[str, float, int]]:
        """(segment, mean µs, samples) over reroute-recovered runs."""
        sums: Dict[str, List[float]] = {}
        order: List[str] = []
        for outcome in self.outcomes:
            segments = outcome.latency_segments()
            if not segments:
                continue
            for label, value in segments:
                if label not in sums:
                    sums[label] = []
                    order.append(label)
                sums[label].append(value)
        return [(label, sum(sums[label]) / len(sums[label]), len(sums[label]))
                for label in order]

    def render(self) -> str:
        lines = [
            "%s (seed=%d, %d runs)"
            % (self.TITLE, self.seed, len(self.outcomes)),
            "%-18s %9s %11s %6s %11s" % ("Scenario", "reroute",
                                         "retransmit", "lost",
                                         "deadlocked"),
        ]
        for scenario in self.scenarios():
            row = self.counts[scenario]
            lines.append("%-18s %9d %11d %6d %11d" % (
                scenario,
                row[NetCategory.REROUTE],
                row[NetCategory.RETRANSMIT],
                row[NetCategory.LOST],
                row[NetCategory.DEADLOCKED]))
        breakdown = self.latency_breakdown()
        if breakdown:
            lines.append("")
            lines.append("Reroute recovery latency breakdown "
                         "(mean over %d recovered runs):"
                         % max(n for _l, _m, n in breakdown))
            for label, mean, samples in breakdown:
                lines.append("  %-28s %12.1f us  (n=%d)"
                             % (label, mean, samples))
        return "\n".join(lines)


def run_netfaults_campaign(runs_per_scenario: int = 5, seed: int = 2003,
                           scenarios: Optional[List[str]] = None,
                           n_nodes: int = 4, topology: str = "ring",
                           messages: int = 12,
                           progress: Optional[Callable[[int], None]] = None,
                           workers: int = 1) -> NetFaultCampaignResult:
    """Sweep every scenario ``runs_per_scenario`` times.

    ``workers > 1`` fans runs out over a process pool via the SWIFI
    campaign's runner; the aggregate is identical to a serial campaign.
    """
    from ..exp.runner import derive_run_seed, run_many

    scenarios = scenarios or list(NET_SCENARIOS)
    configs = []
    run_id = 0
    for scenario in scenarios:
        for _ in range(runs_per_scenario):
            configs.append(NetFaultConfig(
                run_id=run_id, seed=derive_run_seed(seed, run_id),
                scenario=scenario, n_nodes=n_nodes, topology=topology,
                messages=messages))
            run_id += 1
    outcomes = run_many(configs, run_netfault_injection, workers=workers,
                        progress=progress)
    return NetFaultCampaignResult(seed, outcomes)
