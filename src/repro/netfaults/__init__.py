"""Network fault plane: link/switch fault injection, path-fault
detection, and mapper-driven reroute recovery.

The paper scopes its fault model to NIC-processor hangs (§3) and defers
link/switch failures to Myrinet's remapping machinery.  This package
exercises that deferred half: :class:`NetworkFaultPlane` injects
link/switch faults into a fabric, :class:`PathDetector` classifies
stalled routes as NIC-hang vs. path-dead so the FTD only resets the card
when the card is actually at fault, and the campaign runner sweeps fault
scenarios over multi-switch topologies, tabulating recovery outcomes and
a recovery-latency breakdown analogous to the paper's Table 3.
"""

from .campaign import (
    NET_CATEGORY_ORDER,
    NET_SCENARIOS,
    NetCategory,
    NetFaultCampaignResult,
    NetFaultConfig,
    NetFaultOutcome,
    run_netfault_injection,
    run_netfaults_campaign,
)
from .detector import PathDetector, Verdict, arm_detectors
from .plane import FaultAction, NetworkFaultPlane

__all__ = [
    "FaultAction",
    "NET_CATEGORY_ORDER",
    "NET_SCENARIOS",
    "NetCategory",
    "NetFaultCampaignResult",
    "NetFaultConfig",
    "NetFaultOutcome",
    "NetworkFaultPlane",
    "PathDetector",
    "Verdict",
    "arm_detectors",
    "run_netfault_injection",
    "run_netfaults_campaign",
]
