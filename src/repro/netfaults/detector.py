"""Path-fault detection: NIC-hang vs. path-dead classification.

The paper's watchdog answers one question — *is the local LANai alive?*
— and resets the card when it is not.  A severed link or a dead switch
port produces the same application-visible symptom (sends stop
completing) while the card is perfectly healthy; resetting it would cost
~765 ms and fix nothing.  The :class:`PathDetector` layers on the FTGM
machinery to tell these apart:

1. **per-route send-timeout accounting** — a periodic sweep over the
   MCP's tx streams finds destinations whose Go-Back-N has made no
   forward progress for ``suspect_stall_us`` (well below GM's 7 s send
   failure);
2. **routed liveness probe** — a HEARTBEAT over the installed route; an
   answer proves both path and peer, verdict HEALTHY;
3. **mapper-scout probe** — an unanswered heartbeat escalates to a
   TTL-bounded scout flood (the mapper's own discovery primitive, which
   does not depend on the dead route).  If the suspect answers the
   flood, some path still exists: verdict PATH_DEAD and the FTD is told
   to re-run the mapper (:meth:`FaultToleranceDaemon.notify_path_fault`)
   — the card is *not* reset.  If the suspect is silent even to the
   flood: verdict REMOTE_DEAD — no reset, no reroute, the send-stall
   machinery errors the stream out.

A hung local MCP is recorded as NIC_HANG and left to the §4.2 watchdog —
IT1 and the FTD's magic-word confirmation own that fault domain.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..net.packet import Packet, PacketType
from ..sim import Tracer

__all__ = ["PathDetector", "Verdict", "arm_detectors"]

# Detector heartbeats live in their own sequence space so they never
# collide with a PeerWatchdog's small incrementing probe numbers.
_PROBE_SEQ_BASE = 1_000_000


class Verdict:
    HEALTHY = "healthy"
    NIC_HANG = "nic-hang"
    PATH_DEAD = "path-dead"
    REMOTE_DEAD = "remote-dead"


class PathDetector:
    """Per-node path-fault detector; runs on the node's host."""

    def __init__(self, driver,
                 interval_us: float = 5_000.0,
                 suspect_stall_us: float = 15_000.0,
                 probe_timeout_us: float = 2_000.0,
                 probe_retries: int = 2,
                 scout_settle_us: float = 1_500.0,
                 min_reverdict_us: float = 250_000.0,
                 phase_us: Optional[float] = None,
                 scout_ttl: Optional[int] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = driver.sim
        self.driver = driver
        self.node_id = driver.nic.node_id
        self.name = "netdet%d" % self.node_id
        self.interval_us = interval_us
        self.suspect_stall_us = suspect_stall_us
        self.probe_timeout_us = probe_timeout_us
        self.probe_retries = probe_retries
        self.scout_settle_us = scout_settle_us
        self.min_reverdict_us = min_reverdict_us
        # Hop budget of the escalation scout flood.  The default (the
        # mapper's own TTL) is fine on small fabrics; large multi-tier
        # fabrics cap it to what reaches any host (5 hops on a 3-tier
        # fat-tree) because flood cost grows with path multiplicity.
        self.scout_ttl = scout_ttl
        # Stagger sweeps across nodes so concurrent detectors do not all
        # classify the same fault in the same deterministic instant.
        self.phase_us = phase_us if phase_us is not None \
            else (self.node_id % 8) * interval_us / 10.0
        self.tracer = tracer if tracer is not None else driver.tracer
        self.verdicts: List[Tuple[float, int, str]] = []
        self.probes_sent = 0
        self.scouts_sent = 0
        self._seq = _PROBE_SEQ_BASE + self.node_id * 100_000
        self._replies: Dict[int, bool] = {}   # outstanding probe seq -> answered
        self._chained_fn = None
        self._last_verdict: Dict[int, Tuple[float, str]] = {}
        self._hang_seen = None
        self.running = False
        self._proc = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.driver.host.spawn(self._run(), self.name)

    def stop(self) -> None:
        self.running = False

    # -- heartbeat plumbing ---------------------------------------------------

    def _ensure_listener(self) -> None:
        """(Re)chain onto the live MCP's single heartbeat-listener slot.

        Replies to our own probes are consumed; everything else is
        passed through to whatever listener (e.g. a PeerWatchdog) was
        installed before us.  Re-checked before every probe because the
        MCP object is replaced on reload.
        """
        mcp = self.driver.mcp
        if mcp is None or mcp.heartbeat_listener is self._chained_fn:
            return
        prev = mcp.heartbeat_listener

        def chained(pkt, _prev=prev):
            if pkt.seq in self._replies:
                self._replies[pkt.seq] = True
            elif _prev is not None:
                _prev(pkt)

        self._chained_fn = chained
        mcp.heartbeat_listener = chained

    def _record(self, dest: int, verdict: str) -> None:
        now = self.sim.now
        self.verdicts.append((now, dest, verdict))
        self._last_verdict[dest] = (now, verdict)
        self.tracer.emit(now, self.name, "path_verdict",
                         dest=dest, verdict=verdict)

    # -- the sweep loop -------------------------------------------------------

    def _run(self) -> Generator:
        yield self.sim.timeout(self.interval_us + self.phase_us)
        while self.running:
            yield from self._sweep()
            yield self.sim.timeout(self.interval_us)

    def _sweep(self) -> Generator:
        mcp = self.driver.mcp
        if mcp is None or not mcp.running:
            if mcp is not None and mcp.hung and self._hang_seen is not mcp:
                # The card itself is gone: that is the watchdog's fault
                # domain (IT1 + magic word), not ours.  Record the
                # classification and stand down.
                self._hang_seen = mcp
                self._record(-1, Verdict.NIC_HANG)
            return
        ftd = getattr(self.driver, "ftd", None)
        if ftd is not None and ftd.rerouting:
            # The mapper is live on this node: its discovery shares our
            # agent reply store, so probing now would steal its replies.
            return
        now = self.sim.now
        suspects = sorted({
            key[0] for key, stream in mcp.tx_streams.items()
            if key[0] != self.node_id
            and stream.has_unacked()
            and now - stream.last_progress_at > self.suspect_stall_us})
        for dest in suspects:
            last = self._last_verdict.get(dest)
            if last is not None and last[1] != Verdict.HEALTHY \
                    and self.sim.now - last[0] < self.min_reverdict_us:
                continue  # debounce: we already ruled on this path
            verdict = yield from self._classify(dest)
            self._record(dest, verdict)
            if verdict == Verdict.PATH_DEAD and ftd is not None:
                ftd.notify_path_fault(dest)
                # One reroute refreshes every route; re-sweep later.
                return
            if verdict == Verdict.NIC_HANG:
                return

    # -- classification -------------------------------------------------------

    def _classify(self, dest: int) -> Generator:
        """The verdict ladder for one suspect destination."""
        mcp = self.driver.mcp
        if mcp is None or not mcp.running or mcp.hung:
            return Verdict.NIC_HANG
        route = mcp.routing_table.get(dest)
        if route is not None:
            answered = yield from self._heartbeat_probe(mcp, dest, route)
            if answered:
                return Verdict.HEALTHY
        # The installed route is dead (or absent): ask the fabric itself.
        alive = yield from self._scout_probe(mcp, dest)
        return Verdict.PATH_DEAD if alive else Verdict.REMOTE_DEAD

    def _heartbeat_probe(self, mcp, dest: int,
                         route: List[int]) -> Generator:
        """Routed HEARTBEAT over the installed route; True if answered."""
        for _attempt in range(self.probe_retries):
            self._ensure_listener()
            self._seq += 1
            seq = self._seq
            self._replies[seq] = False
            probe = Packet(ptype=PacketType.HEARTBEAT,
                           src_node=self.node_id, dest_node=dest,
                           route=list(route), seq=seq)
            mcp._transmit(probe.seal())
            self.probes_sent += 1
            yield self.sim.timeout(self.probe_timeout_us)
            if self._replies.pop(seq, False):
                return True
        return False

    def _scout_probe(self, mcp, dest: int) -> Generator:
        """Scout flood; True if ``dest`` answered (some path exists)."""
        agent = mcp.mapper_agent
        agent.replies.drain()   # discard stale replies from older rounds
        from ..net.mapper import Mapper
        ttl = self.scout_ttl if self.scout_ttl is not None \
            else Mapper.SCOUT_TTL
        scout = Packet(ptype=PacketType.MAPPER_SCOUT,
                       src_node=self.node_id, dest_node=-1,
                       flood=True, ttl=ttl)
        mcp._transmit(scout)
        self.scouts_sent += 1
        yield self.sim.timeout(self.scout_settle_us)
        alive = any(info["node_id"] == dest
                    for info in agent.replies.drain())
        return alive


def arm_detectors(cluster, nodes: Optional[List[int]] = None,
                  **kwargs) -> List[PathDetector]:
    """Start one :class:`PathDetector` per node of an FTGM cluster.

    ``nodes`` restricts arming to the listed node ids — on a
    hundreds-of-nodes fabric only the workload-active nodes have tx
    streams to sweep, and idle nodes must stay parked (a sweeping
    detector would keep every MCP awake).
    """
    detectors = []
    wanted = None if nodes is None else set(nodes)
    for node in cluster.nodes:
        if wanted is not None and node.node_id not in wanted:
            continue
        detector = PathDetector(node.driver, tracer=cluster.tracer,
                                **kwargs)
        detector.start()
        detectors.append(detector)
    return detectors
