"""One-call construction of a simulated Myrinet cluster.

Builds the paper's testbed shape — N hosts, each with a LANai9 NIC,
star-cabled to one 8-port switch — loads GM or FTGM on every node, and
runs the mapper so routes exist.  Everything the benchmarks and examples
need starts from here.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from .hw.host import Host
from .hw.nic import Nic
from .net.fabric import Fabric
from .net.mapper import Mapper
from .sim import SeededRng, Simulator, Tracer

__all__ = ["Node", "MyrinetCluster", "build_cluster",
           "build_cluster_from_spec"]


class Node:
    """One cluster node: host machine + NIC + driver (+ open ports)."""

    def __init__(self, node_id: int, host: Host, nic: Nic, driver):
        self.node_id = node_id
        self.host = host
        self.nic = nic
        self.driver = driver

    @property
    def mcp(self):
        return self.driver.mcp

    def __repr__(self) -> str:
        return "Node(%d)" % self.node_id


class MyrinetCluster:
    """A booted cluster, ready for traffic."""

    def __init__(self, sim: Simulator, nodes: List[Node], fabric: Fabric,
                 switch, tracer: Tracer, rng: SeededRng, flavor: str,
                 topology: str = "star"):
        self.sim = sim
        self.nodes = nodes
        self.fabric = fabric
        self.switch = switch            # first switch (back-compat handle)
        self.switches = fabric.switches
        self.tracer = tracer
        self.rng = rng
        self.flavor = flavor
        self.topology = topology

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def map_network(self, mapper_node: int = 0) -> Generator:
        """Process: run the GM mapper from ``mapper_node``."""
        mapper = Mapper(self.nodes[mapper_node].mcp.mapper_agent,
                        expected_nodes=len(self.nodes))
        found = yield from mapper.run()
        return found

    def boot(self) -> None:
        """Run the mapper to completion (advances simulated time)."""
        done = []

        def _boot():
            found = yield from self.map_network()
            done.append(found)

        self.sim.spawn(_boot(), name="cluster-boot")
        limit = self.sim.now + 10_000_000.0
        while not done and self.sim.peek() <= limit:
            self.sim.step()
        if not done:
            raise RuntimeError("cluster mapping did not complete")

    def ftds(self) -> List:
        """The fault-tolerance daemons (FTGM clusters only)."""
        return [node.driver.ftd for node in self.nodes
                if getattr(node.driver, "ftd", None) is not None]


def _driver_class(flavor):
    if not isinstance(flavor, str):
        return flavor  # a driver class (ablation variants pass one)
    if flavor == "gm":
        from .gm.driver import GmDriver
        return GmDriver
    if flavor == "ftgm":
        from .ftgm.driver import FtgmDriver
        return FtgmDriver
    raise ValueError("unknown flavor %r (use 'gm' or 'ftgm')" % flavor)


def build_cluster(n_nodes: int = 2, flavor: str = "gm", seed: int = 0,
                  trace: bool = False,
                  interpreted_nodes: Optional[List[int]] = None,
                  boot: bool = True,
                  start_ftd: bool = True,
                  topology: str = "star",
                  n_switches: Optional[int] = None) -> MyrinetCluster:
    """Build (and by default boot) an N-node Myrinet cluster.

    ``interpreted_nodes`` lists node ids whose MCP runs ``send_chunk`` on
    the LANai interpreter (the fault-injection target); all other nodes
    use the fast native model.

    ``topology`` selects the fabric shape:

    * ``"star"`` (default) — the paper's testbed: one switch, every NIC
      on it.  Byte-identical to the historical single-switch bring-up.
    * ``"ring"`` — ``n_switches`` (default 2) M3M-SW8-like switches in a
      ring; NICs spread across them in contiguous blocks.  A 2-switch
      ring has two independent uplinks, so a severed uplink leaves an
      alternate path — the redundant fabric the netfault reroute
      experiments need.
    * ``"tree"`` — a root switch over ``n_switches`` (default 2) leaf
      switches.  No redundancy: a severed uplink genuinely partitions
      that leaf.
    """
    if n_nodes < 2:
        raise ValueError("a cluster needs at least 2 nodes")
    if topology not in ("star", "ring", "tree"):
        raise ValueError("unknown topology %r (use star, ring or tree)"
                         % (topology,))
    sim = Simulator()
    if trace:
        tracer = Tracer(enabled=True)
    else:
        from .obs import runtime as obs_runtime
        if obs_runtime.tracing():
            # Engine-requested trace capture (--trace): record everything
            # except the idle-tick heartbeat, which would swamp the trace
            # with ~2k records per simulated millisecond.
            from .obs.spans import forced_trace_kinds
            tracer = Tracer(enabled=True, kinds=forced_trace_kinds())
        else:
            tracer = Tracer(enabled=False)
    rng = SeededRng(seed, "cluster")
    driver_cls = _driver_class(flavor)
    interpreted = set(interpreted_nodes or [])

    fabric = Fabric(sim, tracer)
    nodes: List[Node] = []
    nics: List[Nic] = []
    for node_id in range(n_nodes):
        host = Host(sim, "host%d" % node_id, tracer)
        nic = Nic(sim, host, node_id, tracer=tracer)
        nics.append(nic)
        driver = driver_cls(sim, host, nic, tracer,
                            interpreted=node_id in interpreted)
        nodes.append(Node(node_id, host, nic, driver))
    if topology == "star":
        switch = fabric.star(nics)
    elif topology == "ring":
        switches = fabric.ring(nics, n_switches=n_switches or 2)
        switch = switches[0]
    else:  # tree
        switches = fabric.tree(nics, n_leaves=n_switches or 2)
        switch = switches[0]

    for node in nodes:
        node.driver.load_mcp()
        if start_ftd and hasattr(node.driver, "start_ftd"):
            node.driver.start_ftd()

    cluster = MyrinetCluster(sim, nodes, fabric, switch, tracer, rng, flavor,
                             topology=topology)
    if boot:
        cluster.boot()
    return cluster


def build_cluster_from_spec(spec, seed: int = 0,
                            **overrides) -> MyrinetCluster:
    """Build a cluster from a :class:`repro.exp.spec.ClusterSpec`.

    The experiment engine describes clusters declaratively; this is the
    bridge from that description to :func:`build_cluster`.  ``overrides``
    pass through (``trace=``, ``boot=``, ...).
    """
    return build_cluster(
        n_nodes=spec.n_nodes,
        flavor=spec.flavor,
        seed=seed,
        topology=spec.topology,
        n_switches=spec.n_switches or None,
        interpreted_nodes=list(spec.interpreted_nodes) or None,
        **overrides)
