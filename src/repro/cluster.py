"""One-call construction of a simulated Myrinet cluster.

Builds the paper's testbed shape — N hosts, each with a LANai9 NIC,
star-cabled to one 8-port switch — loads GM or FTGM on every node, and
runs the mapper so routes exist.  Everything the benchmarks and examples
need starts from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from .hw.host import Host
from .hw.nic import Nic
from .net.fabric import Fabric, clos_dimensions, fat_tree_dimensions
from .net.mapper import make_mapper
from .sim import SeededRng, ShardedScheduler, Simulator, Tracer
from .sim import shards_from_env

__all__ = ["Node", "MyrinetCluster", "ShardPlan", "plan_shards",
           "build_cluster", "build_cluster_from_spec"]


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic node→shard assignment for one cluster.

    ``node_shard[i]`` is the wheel index of node ``i``; the fabric
    (every switch plus the fault plane) runs on wheel ``fabric_shard``.
    With more than one node shard the fabric gets a dedicated wheel —
    switches sit between nodes, so co-locating them with one node would
    make every other node's traffic cross two boundaries into a wheel
    that is also busy with host work.  ``colocate_fabric=True`` folds it
    onto wheel 0 instead (the co-located layout the partitioner tests
    exercise).
    """

    n_shards: int
    node_shard: Tuple[int, ...]
    fabric_shard: int
    n_wheels: int

    def wheel_of(self, node_id: int) -> int:
        return self.node_shard[node_id]


def plan_shards(n_nodes: int, shards: int,
                colocate_fabric: bool = False,
                rack_span: Optional[int] = None) -> ShardPlan:
    """Partition ``n_nodes`` nodes over at most ``shards`` shards.

    Nodes are assigned in balanced contiguous blocks (``i * s // n``),
    which keeps node 0 — the boot/mapper node — on wheel 0 and mirrors
    the fabric's contiguous NIC placement, so neighbouring nodes tend to
    share a shard.  Asking for more shards than nodes clamps.

    ``rack_span`` makes the plan topology-aware: with hosts packed onto
    leaf/edge switches in blocks of ``rack_span`` (the Clos and fat-tree
    placement), shard boundaries snap to rack boundaries so no rack
    straddles two wheels — the fabric builder then co-locates each leaf
    switch with its rack's wheel and only leaf-spine uplinks (which have
    wire latency, i.e. lookahead) cross shards.  Shards clamp to the
    rack count.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if shards < 1:
        raise ValueError("need at least one shard, got %r" % (shards,))
    if rack_span is not None and rack_span < 1:
        raise ValueError("rack_span must be >= 1, got %r" % (rack_span,))
    shards = min(shards, n_nodes)
    if rack_span is None or shards == 1:
        node_shard = tuple(i * shards // n_nodes for i in range(n_nodes))
    else:
        n_racks = -(-n_nodes // rack_span)
        shards = min(shards, n_racks)
        node_shard = tuple((i // rack_span) * shards // n_racks
                           for i in range(n_nodes))
    if shards == 1 or colocate_fabric:
        fabric_shard = 0
        n_wheels = shards
    else:
        fabric_shard = shards
        n_wheels = shards + 1
    return ShardPlan(n_shards=shards, node_shard=node_shard,
                     fabric_shard=fabric_shard, n_wheels=n_wheels)


class Node:
    """One cluster node: host machine + NIC + driver (+ open ports)."""

    def __init__(self, node_id: int, host: Host, nic: Nic, driver):
        self.node_id = node_id
        self.host = host
        self.nic = nic
        self.driver = driver

    @property
    def mcp(self):
        return self.driver.mcp

    def __repr__(self) -> str:
        return "Node(%d)" % self.node_id


class MyrinetCluster:
    """A booted cluster, ready for traffic."""

    def __init__(self, sim: Simulator, nodes: List[Node], fabric: Fabric,
                 switch, tracer: Tracer, rng: SeededRng, flavor: str,
                 topology: str = "star", fabric_sim: Optional[Simulator] = None,
                 shard_plan: Optional[ShardPlan] = None):
        self.sim = sim
        self.nodes = nodes
        self.fabric = fabric
        self.switch = switch            # first switch (back-compat handle)
        self.switches = fabric.switches
        self.tracer = tracer
        self.rng = rng
        self.flavor = flavor
        self.topology = topology
        # The wheel that owns the switches (and the netfault plane).
        # Serial clusters have one wheel, so it is simply ``sim``.
        self.fabric_sim = fabric_sim if fabric_sim is not None else sim
        self.shard_plan = shard_plan
        # Continuous-telemetry plane: wired by build_cluster only when
        # the sampling / flight-recorder intents are set; None otherwise.
        self.sampler = None
        self.flight = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def map_network(self, mapper_node: int = 0) -> Generator:
        """Process: run the GM mapper from ``mapper_node``.

        Clos/fat-tree fabrics use the hierarchical two-phase mapper
        (switch-graph census, then per-leaf discovery); everything else
        keeps the paper's flat flood.
        """
        mapper = make_mapper(
            self.nodes[mapper_node].mcp.mapper_agent,
            hierarchical=self.topology in ("clos", "fat-tree"),
            expected_nodes=len(self.nodes))
        found = yield from mapper.run()
        return found

    def boot(self) -> None:
        """Run the mapper to completion (advances simulated time)."""
        done = []

        def _boot():
            found = yield from self.map_network()
            done.append(found)

        self.sim.spawn(_boot(), name="cluster-boot")
        limit = self.sim.now + 10_000_000.0
        while not done and self.sim.peek() <= limit:
            self.sim.step()
        if not done:
            raise RuntimeError("cluster mapping did not complete")

    def ftds(self) -> List:
        """The fault-tolerance daemons (FTGM clusters only)."""
        return [node.driver.ftd for node in self.nodes
                if getattr(node.driver, "ftd", None) is not None]


def _driver_class(flavor):
    if not isinstance(flavor, str):
        return flavor  # a driver class (ablation variants pass one)
    if flavor == "gm":
        from .gm.driver import GmDriver
        return GmDriver
    if flavor == "ftgm":
        from .ftgm.driver import FtgmDriver
        return FtgmDriver
    raise ValueError("unknown flavor %r (use 'gm' or 'ftgm')" % flavor)


#: Clusters at or above this size default to lazy node parking (see
#: ``repro.gm.mcp``): idle MCPs quiesce off the event wheel entirely.
#: Below it the historical always-ticking execution is kept, so every
#: pre-existing (small) experiment stays byte-identical.  REPRO_LAZY=1/0
#: forces the mode either way.
LAZY_AUTO_THRESHOLD = 16


def build_cluster(n_nodes: int = 2, flavor: str = "gm", seed: int = 0,
                  trace: bool = False,
                  interpreted_nodes: Optional[List[int]] = None,
                  boot: bool = True,
                  start_ftd: bool = True,
                  topology: str = "star",
                  n_switches: Optional[int] = None,
                  radix: Optional[int] = None,
                  shards: Optional[int] = None,
                  shard_schedule: Optional[str] = None,
                  lazy: Optional[bool] = None) -> MyrinetCluster:
    """Build (and by default boot) an N-node Myrinet cluster.

    ``interpreted_nodes`` lists node ids whose MCP runs ``send_chunk`` on
    the LANai interpreter (the fault-injection target); all other nodes
    use the fast native model.

    ``topology`` selects the fabric shape:

    * ``"star"`` (default) — the paper's testbed: one switch, every NIC
      on it.  Byte-identical to the historical single-switch bring-up.
    * ``"ring"`` — ``n_switches`` (default 2) M3M-SW8-like switches in a
      ring; NICs spread across them in contiguous blocks.  A 2-switch
      ring has two independent uplinks, so a severed uplink leaves an
      alternate path — the redundant fabric the netfault reroute
      experiments need.
    * ``"tree"`` — a root switch over ``n_switches`` (default 2) leaf
      switches.  No redundancy: a severed uplink genuinely partitions
      that leaf.
    * ``"clos"`` — a two-tier leaf-spine Clos: ``n_switches`` (default
      2) spines over as many ``radix``-port leaves as the node count
      needs; every leaf pair has ``n_switches`` equal-cost paths.
    * ``"fat-tree"`` — a 3-tier radix-``radix`` (default 8) fat-tree
      with only the pods the node count needs; cross-pod pairs have
      ``(radix/2)**2`` equal-cost paths.

    ``radix`` is the per-switch port count of the Clos/fat-tree
    generators (ignored by the small topologies).  Clos/fat-tree
    clusters boot through the hierarchical mapper and, at
    ``LAZY_AUTO_THRESHOLD`` nodes or more, default to lazy node parking
    (``lazy``/``REPRO_LAZY`` override).

    ``shards`` selects the execution mode (not part of the experiment's
    identity — results are byte-identical at equal seeds): ``1`` is the
    historical single-wheel simulator; ``N > 1`` gives every node shard
    its own event wheel plus a dedicated fabric wheel, coordinated by a
    :class:`repro.sim.ShardedScheduler` under ``shard_schedule``
    ("merged", "windowed" or "threads").  Defaults come from
    ``REPRO_SHARDS`` / ``REPRO_SHARD_SCHEDULE`` so the experiment engine
    can set the mode once for serial, pool and fork-server children.
    """
    if n_nodes < 2:
        raise ValueError("a cluster needs at least 2 nodes")
    if topology not in ("star", "ring", "tree", "clos", "fat-tree"):
        raise ValueError("unknown topology %r (use star, ring, tree, "
                         "clos or fat-tree)" % (topology,))
    env_shards, env_schedule = shards_from_env()
    if shards is None:
        shards = env_shards
    if shard_schedule is None:
        shard_schedule = env_schedule
    rack_span: Optional[int] = None
    if topology == "clos":
        rack_span = clos_dimensions(n_nodes, n_switches or 2,
                                    radix or 8)[0]
    elif topology == "fat-tree":
        rack_span = fat_tree_dimensions(n_nodes, radix or 8)[0]
    plan: Optional[ShardPlan] = None
    if shards > 1:
        plan = plan_shards(n_nodes, shards, rack_span=rack_span)
    if plan is not None and plan.n_wheels > 1:
        scheduler = ShardedScheduler(plan.n_wheels, schedule=shard_schedule)
        sim: Simulator = scheduler
        wheels = scheduler.wheels
        node_sim = [wheels[plan.node_shard[i]] for i in range(n_nodes)]
        fabric_sim = wheels[plan.fabric_shard]
    else:
        plan = None
        sim = Simulator()
        node_sim = [sim] * n_nodes
        fabric_sim = sim
    from .obs import runtime as obs_runtime
    if trace:
        tracer = Tracer(enabled=True)
    elif obs_runtime.tracing():
        # Engine-requested trace capture (--trace): record everything
        # except the idle-tick heartbeat, which would swamp the trace
        # with ~2k records per simulated millisecond.
        from .obs.spans import forced_trace_kinds
        tracer = Tracer(enabled=True, kinds=forced_trace_kinds())
    else:
        tracer = Tracer(enabled=False)
    flight = None
    if obs_runtime.flight_on():
        from .obs.flightrec import FlightRecorder
        flight = FlightRecorder()
        flight.attach(tracer)
        obs_runtime.note_flight(flight)
    rng = SeededRng(seed, "cluster")
    driver_cls = _driver_class(flavor)
    interpreted = set(interpreted_nodes or [])

    fabric = Fabric(fabric_sim, tracer)
    nodes: List[Node] = []
    nics: List[Nic] = []
    for node_id in range(n_nodes):
        wheel = node_sim[node_id]
        host = Host(wheel, "host%d" % node_id, tracer)
        nic = Nic(wheel, host, node_id, tracer=tracer)
        nics.append(nic)
        driver = driver_cls(wheel, host, nic, tracer,
                            interpreted=node_id in interpreted)
        nodes.append(Node(node_id, host, nic, driver))
    if topology == "star":
        switch = fabric.star(nics)
    elif topology == "ring":
        switches = fabric.ring(nics, n_switches=n_switches or 2)
        switch = switches[0]
    elif topology == "tree":
        switches = fabric.tree(nics, n_leaves=n_switches or 2)
        switch = switches[0]
    elif topology == "clos":
        switches = fabric.clos(nics, n_spines=n_switches or 2,
                               nports=radix or 8)
        switch = switches[0]
    else:  # fat-tree
        switches = fabric.fat_tree(nics, nports=radix or 8)
        switch = switches[0]

    hierarchical = topology in ("clos", "fat-tree")
    if lazy is None:
        lazy = n_nodes >= LAZY_AUTO_THRESHOLD
    for node in nodes:
        node.driver.hierarchical_mapper = hierarchical
        node.driver.lazy_nodes = lazy
        node.driver.load_mcp()
        if start_ftd and hasattr(node.driver, "start_ftd"):
            node.driver.start_ftd()

    cluster = MyrinetCluster(sim, nodes, fabric, switch, tracer, rng, flavor,
                             topology=topology, fabric_sim=fabric_sim,
                             shard_plan=plan)
    cluster.flight = flight
    every = obs_runtime.sample_every()
    if every is not None:
        from .obs.timeseries import TimeSeriesSampler
        cluster.sampler = TimeSeriesSampler(cluster, every, flight=flight)
    if boot:
        cluster.boot()
    return cluster


def build_cluster_from_spec(spec, seed: int = 0,
                            **overrides) -> MyrinetCluster:
    """Build a cluster from a :class:`repro.exp.spec.ClusterSpec`.

    The experiment engine describes clusters declaratively; this is the
    bridge from that description to :func:`build_cluster`.  ``overrides``
    pass through (``trace=``, ``boot=``, ...).
    """
    return build_cluster(
        n_nodes=spec.n_nodes,
        flavor=spec.flavor,
        seed=seed,
        topology=spec.topology,
        n_switches=spec.n_switches or None,
        radix=getattr(spec, "radix", 0) or None,
        interpreted_nodes=list(spec.interpreted_nodes) or None,
        **overrides)
