"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareError",
    "BusError",
    "HostCrashed",
    "LanaiTrap",
    "InvalidInstruction",
    "AssemblerError",
    "NetworkError",
    "RouteError",
    "GmError",
    "GmSendError",
    "GmNoTokens",
    "GmPortClosed",
    "MpiError",
    "MpiFatalError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class HardwareError(ReproError):
    """Base class for simulated-hardware faults."""


class BusError(HardwareError):
    """An access outside a memory's bounds (LANai SRAM or host DMA space)."""

    def __init__(self, address: int, size: int = 1, what: str = "memory"):
        super().__init__(
            "bus error: %s access at 0x%x (size %d)" % (what, address, size))
        self.address = address
        self.size = size


class HostCrashed(HardwareError):
    """The simulated host machine has crashed (fault propagated from NIC)."""


class LanaiTrap(HardwareError):
    """The LANai processor took a fatal trap (it is now hung)."""

    def __init__(self, reason: str, pc: int):
        super().__init__("LANai trap at pc=0x%x: %s" % (pc, reason))
        self.reason = reason
        self.pc = pc


class InvalidInstruction(LanaiTrap):
    """Decode failure: the word at PC is not a valid instruction."""

    def __init__(self, word: int, pc: int):
        super().__init__("invalid instruction 0x%08x" % (word & 0xFFFFFFFF), pc)
        self.word = word


class AssemblerError(ReproError):
    """Malformed assembly source."""


class NetworkError(ReproError):
    """Base class for fabric-level errors."""


class RouteError(NetworkError):
    """A source route addresses a non-existent switch port."""


class GmError(ReproError):
    """Base class for GM-layer errors."""


class GmSendError(GmError):
    """A send failed fatally (the condition MPI-over-GM treats as fatal)."""


class GmNoTokens(GmError):
    """The caller has exhausted its send or receive tokens."""


class GmPortClosed(GmError):
    """Operation on a closed port."""


class MpiError(ReproError):
    """Base class for the mini-MPI middleware."""


class MpiFatalError(MpiError):
    """The middleware aborted (plain-GM behaviour on send errors)."""
