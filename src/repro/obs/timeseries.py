"""Simulated-time series sampling: counter tracks at a fixed cadence.

The aggregate telemetry plane (harvest + registry) answers "how much,
in total"; this module answers "when".  A :class:`TimeSeriesSampler`
rides the cluster's own event wheel — a self-re-arming timer chain at
``every_us`` of *simulated* time, never wall clock — and snapshots the
registered hot-loop counters into equal-length per-metric tracks.  The
result is fully deterministic: same seed, same cadence, same tracks,
regardless of executor (serial, pool, fork-server or sharded).

Two deliberate disciplines keep sampling honest:

* **Nothing mutates.**  Reading a lazily-parked MCP must not wake it
  (``settle_idle`` replays the parked span *into* the counters, changing
  later folds), so parked nodes are sampled through
  ``Mcp.sample_stats`` — a read-only projection mirroring ``_unpark``'s
  replay arithmetic.
* **Off costs nothing.**  The sampler only exists when the engine's
  ``--sample-every`` intent is set (see ``repro.obs.runtime``); with it
  unset ``build_cluster`` installs nothing — no timer events, no
  sequence draws — and runs are byte-identical to pre-sampling goldens.

Tracks export two ways: the ``"timeseries"`` key of the result document
(``repro.exp.result/1``) and Chrome-trace ``'C'`` counter events
(:meth:`TimeSeriesSampler.counter_records`) that Perfetto renders as
counter plots alongside the existing spans.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim.trace import TraceRecord

__all__ = ["TIMESERIES_SCHEMA", "TimeSeriesSampler", "register_load_tracks"]

#: Schema tag of the result document's ``"timeseries"`` value.
TIMESERIES_SCHEMA = "repro.obs.timeseries/1"


class TimeSeriesSampler:
    """Samples registered counter readers at a simulated-time cadence.

    Sample instants are ``t0 + k * every_us`` (absolute-float timer
    arithmetic via ``timeout_at``, so cadence floats never drift), with
    ``t0`` the install time — 0.0 when installed by ``build_cluster``.
    The timer chain is live (never inert), which also pins the tickless
    idle fold: a parked fabric still stops at every sample instant, so
    sampled values are exact at-instant reads, not estimates.

    ``register`` adds a named track; readers are ``fn(now) -> number``
    and must be read-only.  Tracks registered mid-run (the load plane
    attaches when its run starts) are zero-backfilled so every track
    always spans all of ``times``.
    """

    def __init__(self, cluster, every_us: float, flight=None):
        if every_us <= 0:
            raise ValueError("sample cadence must be positive, got %r"
                             % (every_us,))
        self.cluster = cluster
        self.every_us = float(every_us)
        self.times: List[float] = []
        self.tracks: Dict[str, List[float]] = {}
        self._readers: List[tuple] = []      # (name, fn, track)
        self.flight = flight
        self._prev: Dict[str, float] = {}
        self._register_defaults(cluster)
        self._t0 = cluster.sim.now
        self._k = 0
        self._arm()

    def register(self, name: str, reader: Callable[[float], float]) -> None:
        """Add a track; past sample instants are backfilled with 0."""
        if name in self.tracks:
            raise ValueError("track %r already registered" % (name,))
        track: List[float] = [0] * len(self.times)
        self.tracks[name] = track
        self._readers.append((name, reader, track))

    # -- the timer chain -------------------------------------------------------

    def _arm(self) -> None:
        self._k += 1
        timer = self.cluster.sim.timeout_at(
            self._t0 + self._k * self.every_us)
        timer.callbacks.append(self._fire)

    def _fire(self, _event) -> None:
        # The scheduled instant is exact by construction; don't read a
        # clock (sharded wheels lag the global clock between grants).
        self._sample(self._t0 + self._k * self.every_us)
        self._arm()

    def _sample(self, now: float) -> None:
        self.times.append(now)
        flight = self.flight
        deltas: Optional[Dict[str, float]] = \
            {} if flight is not None else None
        for name, reader, track in self._readers:
            value = reader(now)
            track.append(value)
            if deltas is not None:
                prev = self._prev.get(name, 0)
                if value != prev:
                    deltas[name] = value - prev
                    self._prev[name] = value
        if deltas:
            flight.note_counters(now, deltas)

    # -- default tracks --------------------------------------------------------

    def _register_defaults(self, cluster) -> None:
        for node in cluster.nodes:
            label = "node%d" % node.node_id
            self.register("mcp.%s.l_timer_invocations" % label,
                          _mcp_reader(node, "l_timer_invocations"))
            self.register("mcp.%s.ticks_parked" % label,
                          _mcp_reader(node, "ticks_parked"))
            if getattr(node.driver.mcp, "watchdog_arms", None) is not None:
                self.register("mcp.%s.watchdog_arms" % label,
                              _mcp_reader(node, "watchdog_arms"))
        for key in ("link.packets_carried", "link.packets_corrupted",
                    "switch.forwarded"):
            self.register(key, _fabric_reader(cluster.fabric, key))

    # -- export ----------------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """One run's tracks as the JSON the result document embeds."""
        return {"every_us": self.every_us,
                "t": list(self.times),
                "tracks": {name: list(track)
                           for name, track in sorted(self.tracks.items())}}

    def counter_records(self) -> List[TraceRecord]:
        """The tracks as Chrome-trace ``'C'`` counter events.

        One event per (track, sample); Perfetto groups them into one
        counter track per metric name under the ``timeseries`` process.
        """
        records: List[TraceRecord] = []
        for name, track in sorted(self.tracks.items()):
            for t, value in zip(self.times, track):
                records.append(TraceRecord(t, "timeseries", name,
                                           {"_ph": "C", "value": value}))
        return records


def _mcp_reader(node, key: str) -> Callable[[float], float]:
    """Late-binding MCP counter reader (survives post-recovery reloads).

    Goes through ``sample_stats`` so a lazily-parked MCP reports what
    the always-ticking execution would show at ``now`` without waking.
    """
    def read(now: float) -> float:
        mcp = node.driver.mcp
        stats = getattr(mcp, "sample_stats", None)
        if stats is None:
            return getattr(mcp, key, 0)
        return stats(now).get(key, 0)
    return read


def _fabric_reader(fabric, key: str) -> Callable[[float], float]:
    def read(now: float) -> float:
        return fabric.sample_counters()[key]
    return read


def register_load_tracks(sampler: TimeSeriesSampler, result) -> None:
    """Attach live load-plane tracks to a run's sampler.

    ``result`` is the (still mutating) ``LoadRunResult`` of the run in
    flight; the readers fold its accounting at each sample instant, so
    the tracks show acceptance, delivery and availability *during* the
    fault window — the curve the end-of-run verdict can't.
    """
    def accepted(now: float) -> int:
        return sum(1 for ok in result.accepted.values() if ok)

    def availability(now: float) -> float:
        took = accepted(now)
        if took == 0:
            return 1.0
        return len(result.first_delivery) / took

    sampler.register("load.accepted", accepted)
    sampler.register("load.rejected", lambda now: result.rejected)
    sampler.register("load.delivered",
                     lambda now: len(result.first_delivery))
    sampler.register("load.availability", availability)
