"""The telemetry plane: metrics registry, runtime scope, spans, harvest,
continuous sampling and the flight recorder.

See docs/OBSERVABILITY.md for the registry API, the span taxonomy, the
metric name glossary, the sampler cadence semantics and the
flight-recorder trigger taxonomy.  Import layering: this package root
pulls in only :mod:`.metrics` and :mod:`.runtime` (no simulation
imports), so low layers can depend on it; :mod:`.spans`,
:mod:`.harvest`, :mod:`.report`, :mod:`.timeseries` and
:mod:`.flightrec` are imported lazily by their callers.
"""

from . import runtime
from .metrics import (
    BusyTracker,
    GaugeStat,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "BusyTracker",
    "GaugeStat",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "runtime",
]
