"""The telemetry plane: metrics registry, runtime scope, spans, harvest.

See docs/OBSERVABILITY.md for the registry API, the span taxonomy and
the metric name glossary.  Import layering: this package root pulls in
only :mod:`.metrics` and :mod:`.runtime` (no simulation imports), so low
layers can depend on it; :mod:`.spans`, :mod:`.harvest` and
:mod:`.report` are imported lazily by their callers.
"""

from . import runtime
from .metrics import (
    BusyTracker,
    GaugeStat,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "BusyTracker",
    "GaugeStat",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "runtime",
]
