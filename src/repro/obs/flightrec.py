"""The flight recorder: bounded per-run evidence, dumped on anomaly.

A 200-run campaign with one SLO breach should be post-mortem-debuggable
without rerunning anything.  The :class:`FlightRecorder` keeps a bounded
ring of the run's most recent trace records (plus counter deltas from
the sampler, when one is armed); when the engine classifies a run's
outcome as anomalous — SLO breach, deadlock/timeout outcome, or an
unexpected exception — the ring is dumped to disk together with a
``ckpt`` snapshot of the simulator at the anomaly instant, so the
failed run is both *readable* (the ring) and *time-travelable*
(``restore_flight_dump`` rebuilds the live instant with a verified
state hash).

Cost discipline matches ``Tracer``/``MetricsRegistry``: a disabled
recorder swaps ``record`` for a module-level no-op, and — stronger —
with the ``--flight-recorder`` intent unset nothing is ever
constructed or attached at all, so un-armed runs stay byte-identical
to pre-PR goldens.

Division of labour (determinism): the run's own process only collects
the ring and classifies the trigger; the *parent* engine process takes
the anomaly-instant snapshot afterwards via the standard
``ckpt.take_snapshot`` pause-replay (telemetry, sampling and the
recorder itself all off).  Dump creation and
:func:`restore_flight_dump` verification therefore run the identical
plain replay, which is exactly PR 9's already-proven hash round-trip.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..sim.trace import TraceRecord

__all__ = [
    "FLIGHT_VERSION",
    "RING_CAPACITY",
    "FlightRecorder",
    "classify_anomaly",
    "write_flight_dumps",
    "dump_exception",
    "load_flight_dump",
    "restore_flight_dump",
]

FLIGHT_VERSION = 1

#: Default ring depth; deep enough to span a recovery timeline, small
#: enough that an armed-but-healthy campaign stays cheap.
RING_CAPACITY = 512

_JSON_SCALARS = (int, float, str, bool, type(None))


def _noop_record(record) -> None:
    """Placeholder ``record`` installed while a recorder is disabled."""


def _safe_records(records) -> List[List[Any]]:
    """Ring records as JSON rows ``[time, source, kind, details]``."""
    out = []
    for r in records:
        details = {k: v if isinstance(v, _JSON_SCALARS) else repr(v)
                   for k, v in r.details.items()}
        out.append([r.time, r.source, r.kind, details])
    return out


class FlightRecorder:
    """A bounded ring of recent trace records for one run.

    ``attach`` wires it behind the cluster's tracer: with ``--trace``
    also on it rides the tracer's ``sink`` (the full record list stays
    intact for Chrome export); without it the tracer is enabled with
    the forced span kinds and the ring *is* its record store — same
    records, no duplication, bounded memory.
    """

    def __init__(self, capacity: int = RING_CAPACITY,
                 enabled: bool = True):
        self.ring: deque = deque(maxlen=capacity)
        self.end_at: Optional[float] = None
        self.enabled = enabled  # property: installs the right record

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self._enabled:
            # Restore the recording method (remove the instance shadow).
            self.__dict__.pop("record", None)
        else:
            self.__dict__["record"] = _noop_record

    def record(self, record: TraceRecord) -> None:
        self.ring.append(record)

    def note_counters(self, now: float, deltas: Dict[str, float]) -> None:
        """Fold one sampler tick's counter deltas into the ring."""
        self.record(TraceRecord(now, "flightrec", "counter_deltas",
                                dict(deltas)))

    def note_end(self, now: float) -> None:
        """Pin the run's final simulated instant (set by the harvest)."""
        self.end_at = now

    def attach(self, tracer) -> None:
        if tracer.enabled:
            prior = tracer.sink
            if prior is None:
                tracer.sink = self.record
            else:
                def chained(record, _prior=prior):
                    _prior(record)
                    self.record(record)
                tracer.sink = chained
            return
        from .spans import forced_trace_kinds
        tracer.kinds = forced_trace_kinds()
        tracer.records = self.ring
        tracer.enabled = True

    def report(self, reason: str) -> Dict[str, Any]:
        """The ring as a picklable/JSON-able trigger payload."""
        records = _safe_records(self.ring)
        at = self.end_at
        if at is None and records:
            at = records[-1][0]
        return {"reason": reason, "at_us": at, "records": records}


def classify_anomaly(outcome: Any,
                     exc: Optional[BaseException] = None) -> Optional[str]:
    """The trigger taxonomy: a reason string, or None for a clean run.

    * ``exception: ...`` — the run raised instead of returning.
    * ``slo-breach: <stages>`` — the outcome carries a failed
      ``SloVerdict`` (slo-chaos cells).
    * ``deadlock: <category>`` — the outcome reports
      ``workload_completed=False`` (netfault hangs/partitions, injected
      MCP wedges); the classifier's category names the shape.
    """
    if exc is not None:
        return "exception: %s: %s" % (type(exc).__name__, exc)
    verdict = getattr(outcome, "verdict", None)
    if verdict is not None and getattr(verdict, "passed", True) is False:
        try:
            stages = sorted({s.stage for s in verdict.failed_stages()})
        except Exception:
            stages = []
        return "slo-breach: %s" % (",".join(stages) or "unknown-stage")
    if getattr(outcome, "workload_completed", True) is False:
        category = getattr(outcome, "category", "") \
            or "workload never completed"
        return "deadlock: %s" % category
    return None


def write_flight_dumps(flight_dir: str, spec,
                       reports: List[Tuple[int, Dict[str, Any]]]
                       ) -> List[str]:
    """Parent-side dump writer: one ``.flight.json`` per triggered run.

    Each dump embeds a ``ckpt`` snapshot of the run at its anomaly
    instant, captured by the standard pause-replay — experiments
    without a pauseable boot/resume split (or anomalies before t=0)
    degrade to a ring-only dump with a ``snapshot_error`` note rather
    than losing the ring.
    """
    os.makedirs(flight_dir, exist_ok=True)
    from ..ckpt.snapshot import take_snapshot

    paths = []
    for index, payload in reports:
        doc: Dict[str, Any] = {
            "flight": FLIGHT_VERSION,
            "experiment": spec.experiment,
            "spec": spec.to_dict(),
            "run_index": index,
            "reason": payload.get("reason"),
            "at_us": payload.get("at_us"),
            "records": payload.get("records", []),
            "snapshot": None,
        }
        at = payload.get("at_us")
        if isinstance(at, (int, float)) and at > 0:
            try:
                doc["snapshot"] = take_snapshot(
                    spec, at, run_index=index).to_dict()
            except Exception as exc:  # ring still lands; note why
                doc["snapshot_error"] = "%s: %s" \
                    % (type(exc).__name__, exc)
        else:
            doc["snapshot_error"] = "no anomaly instant recorded"
        path = os.path.join(flight_dir, "%s-run%d.flight.json"
                            % (spec.experiment, index))
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def dump_exception(flight_dir: str, config: Any,
                   recorder: FlightRecorder,
                   exc: BaseException) -> str:
    """Child-side, best-effort ring dump when a run dies on an exception.

    The campaign is about to abort (the engine relays run exceptions),
    so there is no parent aggregation pass to hand the ring to — write
    it directly.  Ring-only: a run that raised has no classified end
    instant to snapshot.
    """
    os.makedirs(flight_dir, exist_ok=True)
    run_id = getattr(config, "run_id", None)
    path = os.path.join(flight_dir, "exception-run%s.flight.json"
                        % ("x" if run_id is None else run_id))
    doc = {
        "flight": FLIGHT_VERSION,
        "run_id": run_id,
        "reason": classify_anomaly(None, exc),
        "at_us": recorder.end_at,
        "records": _safe_records(recorder.ring),
        "snapshot": None,
        "snapshot_error": "run raised before completing",
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_flight_dump(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("flight") != FLIGHT_VERSION:
        raise ValueError("%s is not a flight dump (flight=%r, want %d)"
                         % (path, doc.get("flight"), FLIGHT_VERSION))
    return doc


def restore_flight_dump(dump: Any, verify: bool = True):
    """Time-travel into a dump: rebuild its anomaly instant, verified.

    ``dump`` is a path or a loaded dump document.  Returns the live
    :class:`repro.ckpt.PausedRun` at the anomaly instant; ``verify``
    (default) re-captures and compares the state hash exactly like
    ``restore_snapshot``.
    """
    doc = load_flight_dump(dump) if isinstance(dump, str) else dump
    snap_doc = doc.get("snapshot")
    if not snap_doc:
        raise ValueError(
            "flight dump for %s run %s carries no snapshot (%s)"
            % (doc.get("experiment"), doc.get("run_index"),
               doc.get("snapshot_error", "ring-only dump")))
    from ..ckpt.snapshot import Snapshot, restore_snapshot

    snapshot = Snapshot(experiment=snap_doc["experiment"],
                        spec=snap_doc["spec"],
                        run_index=snap_doc["run_index"],
                        at_us=snap_doc["at_us"],
                        capture=snap_doc["capture"])
    return restore_snapshot(snapshot, verify=verify)
