"""Per-process telemetry runtime: intent flags and the active registry.

The experiment engine configures telemetry *intent* once per process
(``configure``), then brackets each run with ``begin_run`` /
``collect``.  Fork-server children inherit the flags through ``fork``;
pool workers re-configure from arguments carried in the task partial.
Everything here is process-local — runs never share a live registry —
so a run's snapshot only ever reflects its own cluster.

Telemetry intent OFF is the default and installs nothing anywhere: no
wrapper, no registry, no tracer — the hot path is byte-for-byte the
pre-telemetry code.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .metrics import MetricsRegistry, MetricsSnapshot

__all__ = [
    "configure",
    "metrics_on",
    "tracing",
    "begin_run",
    "active_registry",
    "stash_trace",
    "take_trace",
    "collect",
    "reset",
]

_metrics_on = False
_tracing_on = False
_registry: Optional[MetricsRegistry] = None
_trace_records: Optional[List[Any]] = None


def configure(metrics: bool = False, tracing: bool = False) -> None:
    """Set this process's telemetry intent (idempotent)."""
    global _metrics_on, _tracing_on
    _metrics_on = bool(metrics)
    _tracing_on = bool(tracing)


def metrics_on() -> bool:
    return _metrics_on


def tracing() -> bool:
    """True when per-run trace capture was requested (``--trace``)."""
    return _tracing_on


def begin_run() -> Optional[MetricsRegistry]:
    """Open a fresh collection scope for one run.

    Installs a new enabled registry when metrics intent is on (else
    leaves the registry absent) and clears any stashed trace records.
    """
    global _registry, _trace_records
    _registry = MetricsRegistry(enabled=True) if _metrics_on else None
    _trace_records = None
    return _registry


def active_registry() -> Optional[MetricsRegistry]:
    """The current run's registry, or None when metrics are off."""
    return _registry


def stash_trace(records: List[Any]) -> None:
    """Stash a run's trace records for the engine to pick up."""
    global _trace_records
    _trace_records = list(records)


def take_trace() -> Optional[List[Any]]:
    """Remove and return the stashed trace records (None if none)."""
    global _trace_records
    records, _trace_records = _trace_records, None
    return records


def collect() -> Optional[MetricsSnapshot]:
    """Close the run scope: snapshot and drop the active registry."""
    global _registry
    registry, _registry = _registry, None
    return registry.snapshot() if registry is not None else None


def reset() -> None:
    """Return the runtime to its boot state (tests use this)."""
    global _metrics_on, _tracing_on, _registry, _trace_records
    _metrics_on = False
    _tracing_on = False
    _registry = None
    _trace_records = None
