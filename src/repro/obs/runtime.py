"""Per-process telemetry runtime: intent flags and the active registry.

The experiment engine configures telemetry *intent* once per process
(``configure``), then brackets each run with ``begin_run`` /
``collect``.  Fork-server children inherit the flags through ``fork``;
pool workers re-configure from arguments carried in the task partial.
Everything here is process-local — runs never share a live registry —
so a run's snapshot only ever reflects its own cluster.

Telemetry intent OFF is the default and installs nothing anywhere: no
wrapper, no registry, no tracer — the hot path is byte-for-byte the
pre-telemetry code.  The same holds for the continuous plane added in
PR 10: with ``sample_every``/``flight_dir`` unset, ``build_cluster``
installs no sampler timer and no flight-recorder ring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, MetricsSnapshot

__all__ = [
    "configure",
    "metrics_on",
    "tracing",
    "sample_every",
    "flight_on",
    "flight_dir",
    "begin_run",
    "active_registry",
    "note_flight",
    "active_flight",
    "stash_trace",
    "take_trace",
    "stash_timeseries",
    "take_timeseries",
    "collect",
    "reset",
]

_metrics_on = False
_tracing_on = False
_sample_every: Optional[float] = None
_flight_dir: Optional[str] = None
_registry: Optional[MetricsRegistry] = None
_trace_records: Optional[List[Any]] = None
_timeseries: Optional[Dict[str, Any]] = None
_flight: Optional[Any] = None


def configure(metrics: bool = False, tracing: bool = False,
              sample_every: Optional[float] = None,
              flight_dir: Optional[str] = None) -> None:
    """Set this process's telemetry intent (idempotent)."""
    global _metrics_on, _tracing_on, _sample_every, _flight_dir
    _metrics_on = bool(metrics)
    _tracing_on = bool(tracing)
    _sample_every = float(sample_every) if sample_every else None
    _flight_dir = flight_dir


def metrics_on() -> bool:
    return _metrics_on


def tracing() -> bool:
    """True when per-run trace capture was requested (``--trace``)."""
    return _tracing_on


def sample_every() -> Optional[float]:
    """The ``--sample-every`` cadence in µs, or None when sampling is off."""
    return _sample_every


def flight_on() -> bool:
    """True when the flight recorder was armed (``--flight-recorder``)."""
    return _flight_dir is not None


def flight_dir() -> Optional[str]:
    """Where flight dumps land, or None when the recorder is off."""
    return _flight_dir


def begin_run() -> Optional[MetricsRegistry]:
    """Open a fresh collection scope for one run.

    Installs a new enabled registry when metrics intent is on (else
    leaves the registry absent) and clears any stashed trace records
    and timeseries.  The flight-recorder handle is deliberately *not*
    cleared: fork-server children inherit the recorder their server
    built at boot, and ``begin_run`` runs in the child *after* that
    boot — ``build_cluster`` overwrites the handle per built cluster
    instead.
    """
    global _registry, _trace_records, _timeseries
    _registry = MetricsRegistry(enabled=True) if _metrics_on else None
    _trace_records = None
    _timeseries = None
    return _registry


def active_registry() -> Optional[MetricsRegistry]:
    """The current run's registry, or None when metrics are off."""
    return _registry


def note_flight(recorder: Any) -> None:
    """Register the cluster's armed flight recorder (build time)."""
    global _flight
    _flight = recorder


def active_flight() -> Optional[Any]:
    """The most recently armed flight recorder, or None."""
    return _flight


def stash_trace(records: List[Any]) -> None:
    """Stash a run's trace records for the engine to pick up."""
    global _trace_records
    _trace_records = list(records)


def take_trace() -> Optional[List[Any]]:
    """Remove and return the stashed trace records (None if none)."""
    global _trace_records
    records, _trace_records = _trace_records, None
    return records


def stash_timeseries(doc: Dict[str, Any]) -> None:
    """Stash a run's sampled tracks (the sampler's ``to_doc``)."""
    global _timeseries
    _timeseries = doc


def take_timeseries() -> Optional[Dict[str, Any]]:
    """Remove and return the stashed timeseries doc (None if none)."""
    global _timeseries
    doc, _timeseries = _timeseries, None
    return doc


def collect() -> Optional[MetricsSnapshot]:
    """Close the run scope: snapshot and drop the active registry."""
    global _registry
    registry, _registry = _registry, None
    return registry.snapshot() if registry is not None else None


def reset() -> None:
    """Return the runtime to its boot state (tests use this)."""
    global _metrics_on, _tracing_on, _sample_every, _flight_dir
    global _registry, _trace_records, _timeseries, _flight
    _metrics_on = False
    _tracing_on = False
    _sample_every = None
    _flight_dir = None
    _registry = None
    _trace_records = None
    _timeseries = None
    _flight = None
