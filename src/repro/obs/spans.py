"""Span emission: duration spans over the recovery/reroute timelines.

The paper's headline numbers are *timeline* claims — Table 3 breaks a
recovery into daemon wakeup, hang confirmation, card reset, MCP reload,
table restore and event posting — so the telemetry plane exports exactly
those phases as Chrome trace-event duration spans (``ph: B``/``E``).

Spans are emitted *retrospectively*: the FTD already records every phase
boundary in :class:`repro.ftgm.ftd.RecoveryRecord` /
:class:`~repro.ftgm.ftd.RerouteRecord`, and ``Tracer.emit`` takes an
explicit timestamp, so the harvest pass replays the timelines into the
tracer after the run instead of adding live emit sites to the recovery
path.  The per-port handler spans come from the existing
``port_recovery_start``/``port_recovery_done`` trace records.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = [
    "RECOVERY_PHASES",
    "REROUTE_PHASES",
    "EXCLUDED_TRACE_KINDS",
    "forced_trace_kinds",
    "emit_recovery_spans",
]

# Phase labels, in timeline order — these mirror RecoveryRecord.segments()
# and RerouteRecord.segments() and double as histogram name suffixes
# (``recovery.phase.<label>``).
RECOVERY_PHASES: Tuple[str, ...] = (
    "daemon wakeup",
    "hang confirmation",
    "card reset + SRAM clear",
    "MCP reload",
    "table restore",
    "FAULT_DETECTED posting",
)
REROUTE_PHASES: Tuple[str, ...] = (
    "daemon wakeup",
    "mapper discovery",
    "table distribution",
    "ROUTE_CHANGED posting",
)

# Kinds dropped from runtime-forced traces: the idle-tick heartbeat fires
# ~2,000 times per simulated millisecond and would swamp a 12-second run
# with >100k records that show nothing but the clock advancing.
EXCLUDED_TRACE_KINDS = frozenset({"timer_expired"})


class _ExcludeSet:
    """Set-like view whose membership test *excludes* the given kinds.

    ``Tracer.emit`` drops a record when ``kind not in self.kinds``; an
    ordinary set would force us to enumerate every kind we want to keep.
    This inverts the test: everything passes except the excluded kinds.
    """

    __slots__ = ("excluded",)

    def __init__(self, excluded: Iterable[str]):
        self.excluded = frozenset(excluded)

    def __contains__(self, kind: object) -> bool:
        return kind not in self.excluded


def forced_trace_kinds() -> _ExcludeSet:
    """The ``Tracer(kinds=...)`` filter for runtime-forced traces."""
    return _ExcludeSet(EXCLUDED_TRACE_KINDS)


def _emit_span(tracer, source: str, cat: str, label: str,
               start: float, end: float) -> None:
    tracer.emit(start, source, "span", _ph="B", _cat=cat, name=label)
    tracer.emit(end, source, "span", _ph="E", _cat=cat, name=label)


def emit_recovery_spans(cluster) -> None:
    """Replay every FTD recovery/reroute timeline as B/E spans.

    A segment is emitted only when ``0 < start <= end`` — false-alarm
    records leave their later phase boundaries at the 0.0 default, and
    an unfinished phase must not produce an unmatched span.
    """
    tracer = cluster.tracer
    if not tracer.enabled:
        return
    for ftd in cluster.ftds():
        for record in ftd.recoveries:
            for label, start, end in record.segments():
                if 0 < start <= end:
                    _emit_span(tracer, ftd.name, "recovery", label,
                               start, end)
        for record in ftd.reroutes:
            for label, start, end in record.segments():
                if 0 < start <= end:
                    _emit_span(tracer, ftd.name, "reroute", label,
                               start, end)
    # Per-port handler spans, paired from the library's existing records.
    open_at = {}
    pairs = []
    for record in list(tracer.records):
        if record.kind == "port_recovery_start":
            open_at[record.source] = record.time
        elif record.kind == "port_recovery_done":
            started = open_at.pop(record.source, None)
            if started is not None:
                pairs.append((record.source, started, record.time))
    for source, start, end in pairs:
        _emit_span(tracer, source, "recovery", "port recovery", start, end)
