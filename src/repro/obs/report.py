"""Human-readable rendering of a merged MetricsSnapshot.

``repro metrics <experiment>`` runs a campaign with telemetry on and
prints this report: every counter and gauge, every histogram summary,
and — always, even when empty — a Table-3-style recovery-latency block
with per-phase p50/p99 so the paper's breakdown is one command away.
"""

from __future__ import annotations

from typing import List, Optional

from .metrics import Histogram, MetricsSnapshot
from .spans import RECOVERY_PHASES, REROUTE_PHASES

__all__ = ["render_metrics_report"]


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value != value:                      # NaN guard
        return "-"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return "%d" % round(value)
    return "%.3f" % value


def _fmt_us(value: Optional[float]) -> str:
    """Microseconds, scaled for readability above a millisecond."""
    if value is None:
        return "-"
    if abs(value) >= 1_000_000.0:
        return "%.3f s" % (value / 1_000_000.0)
    if abs(value) >= 1_000.0:
        return "%.3f ms" % (value / 1_000.0)
    return "%.3f us" % value


def _phase_row(label: str, hist: Optional[Histogram]) -> str:
    if hist is None or hist.n == 0:
        return "  %-26s %5s  %12s  %12s  %12s  %12s" % (
            label, "-", "-", "-", "-", "-")
    return "  %-26s %5d  %12s  %12s  %12s  %12s" % (
        label, hist.n, _fmt_us(hist.percentile(50)),
        _fmt_us(hist.percentile(99)), _fmt_us(hist.percentile(99.9)),
        _fmt_us(hist.mean()))


def render_metrics_report(snapshot: MetricsSnapshot, *,
                          title: str = "") -> str:
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
        lines.append("")

    lines.append("Counters")
    lines.append("--------")
    if snapshot.counters:
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append("  %-*s  %s" % (width, name,
                                         _fmt(snapshot.counters[name])))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Gauges")
    lines.append("------")
    if snapshot.gauges:
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            stat = snapshot.gauges[name]
            lines.append(
                "  %-*s  n=%d  mean=%s  min=%s  max=%s"
                % (width, name, stat.n, _fmt(stat.mean()),
                   _fmt(stat.min), _fmt(stat.max)))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Histograms")
    lines.append("----------")
    shown = [name for name in sorted(snapshot.histograms)]
    if shown:
        width = max(len(name) for name in shown)
        for name in shown:
            hist = snapshot.histograms[name]
            lines.append(
                "  %-*s  n=%d  p50=%s  p99=%s  p999=%s  mean=%s"
                "  min=%s  max=%s"
                % (width, name, hist.n,
                   _fmt_us(hist.percentile(50)),
                   _fmt_us(hist.percentile(99)),
                   _fmt_us(hist.percentile(99.9)), _fmt_us(hist.mean()),
                   _fmt_us(hist.min), _fmt_us(hist.max)))
    else:
        lines.append("  (none)")

    # The Table-3 block prints unconditionally: a campaign with no
    # recoveries (plain GM, or no hang outcomes) shows dashes, making
    # "nothing recovered" visible rather than silent.
    hists = snapshot.histograms
    lines.append("")
    lines.append("Recovery latency breakdown (cf. paper Table 3)")
    lines.append("----------------------------------------------")
    lines.append("  %-26s %5s  %12s  %12s  %12s  %12s"
                 % ("phase", "n", "p50", "p99", "p999", "mean"))
    lines.append(_phase_row("detection", hists.get("recovery.detection_us")))
    for label in RECOVERY_PHASES:
        lines.append(_phase_row(label,
                                hists.get("recovery.phase.%s" % label)))
    lines.append(_phase_row("port recovery",
                            hists.get("recovery.port_recover_us")))
    lines.append(_phase_row("total (interrupt->posted)",
                            hists.get("recovery.total_us")))

    if any(("reroute.phase.%s" % label) in hists
           for label in REROUTE_PHASES):
        lines.append("")
        lines.append("Reroute latency breakdown")
        lines.append("-------------------------")
        lines.append("  %-26s %5s  %12s  %12s  %12s  %12s"
                     % ("phase", "n", "p50", "p99", "p999", "mean"))
        for label in REROUTE_PHASES:
            lines.append(_phase_row(label,
                                    hists.get("reroute.phase.%s" % label)))

    return "\n".join(lines) + "\n"
