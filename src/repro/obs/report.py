"""Rendering of telemetry: metrics reports and campaign-level reports.

``repro metrics <experiment>`` runs a campaign with telemetry on and
prints :func:`render_metrics_report`: every counter and gauge, every
histogram summary, and — always, even when empty — a Table-3-style
recovery-latency block with per-phase p50/p99 so the paper's breakdown
is one command away.

``repro report <name|result.json>`` aggregates a finished campaign's
result document into :func:`campaign_report_doc`: per-scenario
detection/recovery-latency CDFs (from each run's recovery timeline),
stage-by-stage SLO attribution (which stage breached, by how much),
campaign-wide latency percentiles rebuilt from the serialized telemetry
histograms, and a summary of any sampled timeseries.  Both reports have
a machine-readable ``--json`` form built from the same doc functions,
so CI validates structure instead of grepping rendered text.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .metrics import Histogram, MetricsSnapshot
from .spans import RECOVERY_PHASES, REROUTE_PHASES

__all__ = [
    "REPORT_SCHEMA",
    "render_metrics_report",
    "metrics_report_doc",
    "campaign_report_doc",
    "render_campaign_report",
]

#: Schema tag of the ``repro report --json`` document.
REPORT_SCHEMA = "repro.obs.report/1"


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value != value:                      # NaN guard
        return "-"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return "%d" % round(value)
    return "%.3f" % value


def _fmt_us(value: Optional[float]) -> str:
    """Microseconds, scaled for readability above a millisecond."""
    if value is None:
        return "-"
    if abs(value) >= 1_000_000.0:
        return "%.3f s" % (value / 1_000_000.0)
    if abs(value) >= 1_000.0:
        return "%.3f ms" % (value / 1_000.0)
    return "%.3f us" % value


def _phase_row(label: str, hist: Optional[Histogram]) -> str:
    if hist is None or hist.n == 0:
        return "  %-26s %5s  %12s  %12s  %12s  %12s" % (
            label, "-", "-", "-", "-", "-")
    return "  %-26s %5d  %12s  %12s  %12s  %12s" % (
        label, hist.n, _fmt_us(hist.percentile(50)),
        _fmt_us(hist.percentile(99)), _fmt_us(hist.percentile(99.9)),
        _fmt_us(hist.mean()))


def render_metrics_report(snapshot: MetricsSnapshot, *,
                          title: str = "") -> str:
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
        lines.append("")

    lines.append("Counters")
    lines.append("--------")
    if snapshot.counters:
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append("  %-*s  %s" % (width, name,
                                         _fmt(snapshot.counters[name])))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Gauges")
    lines.append("------")
    if snapshot.gauges:
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            stat = snapshot.gauges[name]
            lines.append(
                "  %-*s  n=%d  mean=%s  min=%s  max=%s"
                % (width, name, stat.n, _fmt(stat.mean()),
                   _fmt(stat.min), _fmt(stat.max)))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Histograms")
    lines.append("----------")
    shown = [name for name in sorted(snapshot.histograms)]
    if shown:
        width = max(len(name) for name in shown)
        for name in shown:
            hist = snapshot.histograms[name]
            lines.append(
                "  %-*s  n=%d  p50=%s  p99=%s  p999=%s  mean=%s"
                "  min=%s  max=%s"
                % (width, name, hist.n,
                   _fmt_us(hist.percentile(50)),
                   _fmt_us(hist.percentile(99)),
                   _fmt_us(hist.percentile(99.9)), _fmt_us(hist.mean()),
                   _fmt_us(hist.min), _fmt_us(hist.max)))
    else:
        lines.append("  (none)")

    # The Table-3 block prints unconditionally: a campaign with no
    # recoveries (plain GM, or no hang outcomes) shows dashes, making
    # "nothing recovered" visible rather than silent.
    hists = snapshot.histograms
    lines.append("")
    lines.append("Recovery latency breakdown (cf. paper Table 3)")
    lines.append("----------------------------------------------")
    lines.append("  %-26s %5s  %12s  %12s  %12s  %12s"
                 % ("phase", "n", "p50", "p99", "p999", "mean"))
    lines.append(_phase_row("detection", hists.get("recovery.detection_us")))
    for label in RECOVERY_PHASES:
        lines.append(_phase_row(label,
                                hists.get("recovery.phase.%s" % label)))
    lines.append(_phase_row("port recovery",
                            hists.get("recovery.port_recover_us")))
    lines.append(_phase_row("total (interrupt->posted)",
                            hists.get("recovery.total_us")))

    if any(("reroute.phase.%s" % label) in hists
           for label in REROUTE_PHASES):
        lines.append("")
        lines.append("Reroute latency breakdown")
        lines.append("-------------------------")
        lines.append("  %-26s %5s  %12s  %12s  %12s  %12s"
                     % ("phase", "n", "p50", "p99", "p999", "mean"))
        for label in REROUTE_PHASES:
            lines.append(_phase_row(label,
                                    hists.get("reroute.phase.%s" % label)))

    return "\n".join(lines) + "\n"


# -- machine-readable metrics report -------------------------------------------


def _hist_summary(hist: Histogram) -> Dict[str, Any]:
    return {"n": hist.n,
            "p50": hist.percentile(50),
            "p99": hist.percentile(99),
            "p999": hist.percentile(99.9),
            "mean": hist.mean(),
            "min": hist.min,
            "max": hist.max}


def metrics_report_doc(snapshot: MetricsSnapshot, *,
                       title: str = "") -> Dict[str, Any]:
    """The ``repro metrics --json`` document: same data as the text
    report, as structure (percentiles precomputed, not bucket edges —
    consumers get numbers, not a histogram implementation)."""
    doc: Dict[str, Any] = {"schema": "repro.obs.metrics_report/1"}
    if title:
        doc["title"] = title
    doc["counters"] = {name: snapshot.counters[name]
                       for name in sorted(snapshot.counters)}
    doc["gauges"] = {name: {"n": stat.n, "mean": stat.mean(),
                            "min": stat.min, "max": stat.max}
                     for name, stat in sorted(snapshot.gauges.items())}
    doc["histograms"] = {name: _hist_summary(hist)
                         for name, hist in
                         sorted(snapshot.histograms.items())}
    return doc


# -- campaign-level report -----------------------------------------------------


def _cdf(values: List[float]) -> Dict[str, Any]:
    """An empirical CDF: the sorted sample plus standard quantiles.

    Campaigns are tens-to-hundreds of runs, so the full sorted sample
    ships in the document (plot-ready); the quantiles use the nearest-
    rank method — exact sample values, no interpolation — because at
    campaign sizes an interpolated p99 would be an invented number.
    """
    if not values:
        return {"n": 0, "values": [], "p50": None, "p90": None,
                "p99": None, "min": None, "max": None}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        index = max(0, min(n - 1, -(-int(q * n) // 100) - 1))
        return ordered[index]

    return {"n": n, "values": ordered,
            "p50": rank(50), "p90": rank(90), "p99": rank(99),
            "min": ordered[0], "max": ordered[-1]}


def _slo_attribution(outcomes: List[Any]) -> Dict[str, Any]:
    """Stage-by-stage SLO attribution over SloChaosOutcome documents."""
    cells: Dict[str, Dict[str, Any]] = {}
    for outcome in outcomes:
        verdict = outcome.get("verdict")
        if not isinstance(verdict, dict) \
                or not isinstance(verdict.get("stages"), list):
            continue
        cell = "%s/%s" % (outcome.get("scenario"), outcome.get("flavor"))
        row = cells.setdefault(cell, {"runs": 0, "failed_runs": 0,
                                      "stages": {}})
        row["runs"] += 1
        if verdict.get("verdict") != "pass":
            row["failed_runs"] += 1
        for stage in verdict["stages"]:
            name = stage.get("stage", "?")
            agg = row["stages"].setdefault(
                name, {"runs": 0, "failed": 0, "breaches": [],
                       "worst_availability": None, "worst_p99_us": None})
            agg["runs"] += 1
            if stage.get("verdict") != "pass":
                agg["failed"] += 1
                agg["breaches"].extend(stage.get("breaches", []))
            availability = stage.get("availability")
            if isinstance(availability, (int, float)) \
                    and (agg["worst_availability"] is None
                         or availability < agg["worst_availability"]):
                agg["worst_availability"] = availability
            p99 = stage.get("p99_us")
            if isinstance(p99, (int, float)) and p99 >= 0 \
                    and (agg["worst_p99_us"] is None
                         or p99 > agg["worst_p99_us"]):
                agg["worst_p99_us"] = p99
    return {cell: cells[cell] for cell in sorted(cells)}


def _scenario_cdfs(outcomes: List[Any]) -> Dict[str, Any]:
    """Per-scenario detection/recovery CDFs over recovery timelines.

    Works on any outcome carrying the netfault timeline fields
    (``fault_at``/``verdict_at``/``reroute_installed_at``); runs whose
    timeline never progressed (fields still -1) contribute nothing to
    the latency samples but are counted, so the CDF's ``n`` against the
    scenario's ``runs`` shows how many runs even *reached* detection.
    """
    scenarios: Dict[str, Dict[str, List[float]]] = {}
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        if "fault_at" not in outcome or "verdict_at" not in outcome:
            continue
        name = outcome.get("scenario", "?")
        counts[name] = counts.get(name, 0) + 1
        data = scenarios.setdefault(name, {"detection_us": [],
                                           "recovery_us": []})
        fault_at = outcome.get("fault_at", -1.0)
        verdict_at = outcome.get("verdict_at", -1.0)
        installed_at = outcome.get("reroute_installed_at", -1.0)
        if fault_at >= 0 and verdict_at >= fault_at:
            data["detection_us"].append(verdict_at - fault_at)
        if fault_at >= 0 and installed_at >= fault_at:
            data["recovery_us"].append(installed_at - fault_at)
    return {name: {"runs": counts[name],
                   "detection_us": _cdf(data["detection_us"]),
                   "recovery_us": _cdf(data["recovery_us"])}
            for name, data in sorted(scenarios.items())}


def campaign_report_doc(result_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate a result document into the campaign report.

    Pure document-to-document: everything is computed from the saved
    JSON (outcome dicts, serialized telemetry histograms, timeseries
    tracks), so a report renders identically from a file written last
    month and from a result produced a millisecond ago.
    """
    spec = result_doc.get("spec", {}) or {}
    outcomes = [o for o in result_doc.get("outcomes", [])
                if isinstance(o, dict)]
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "experiment": spec.get("experiment", "?"),
        "spec_hash": (result_doc.get("manifest", {})
                      or {}).get("spec_hash"),
        "runs": len(result_doc.get("outcomes", [])),
    }
    attribution = _slo_attribution(outcomes)
    if attribution:
        report["slo_attribution"] = attribution
    scenarios = _scenario_cdfs(outcomes)
    if scenarios:
        report["scenarios"] = scenarios
    telemetry = result_doc.get("telemetry")
    if isinstance(telemetry, dict):
        latencies = {}
        for key in ("recovery.detection_us", "recovery.total_us",
                    "recovery.port_recover_us", "load.delivery_us"):
            hist_doc = (telemetry.get("histograms") or {}).get(key)
            if hist_doc is not None:
                latencies[key] = _hist_summary(Histogram.from_doc(hist_doc))
        if latencies:
            report["latency"] = latencies
    series = result_doc.get("timeseries")
    if isinstance(series, dict):
        runs = series.get("runs", [])
        tracks = sorted({name for _, doc in runs
                         for name in doc.get("tracks", {})})
        report["timeseries"] = {
            "sample_every_us": series.get("sample_every_us"),
            "runs_sampled": len(runs),
            "samples": sum(len(doc.get("t", [])) for _, doc in runs),
            "tracks": tracks,
        }
    return report


def _cdf_row(label: str, cdf: Dict[str, Any]) -> str:
    if not cdf["n"]:
        return "    %-14s %5s  %12s  %12s  %12s  %12s" % (
            label, "-", "-", "-", "-", "-")
    return "    %-14s %5d  %12s  %12s  %12s  %12s" % (
        label, cdf["n"], _fmt_us(cdf["p50"]), _fmt_us(cdf["p90"]),
        _fmt_us(cdf["p99"]), _fmt_us(cdf["max"]))


def render_campaign_report(report: Dict[str, Any]) -> str:
    """Text rendering of :func:`campaign_report_doc`."""
    title = "Campaign report: %s (%d runs)" % (report.get("experiment"),
                                               report.get("runs", 0))
    lines = [title, "=" * len(title)]

    scenarios = report.get("scenarios")
    if scenarios:
        lines.append("")
        lines.append("Detection / recovery latency CDFs")
        lines.append("---------------------------------")
        lines.append("    %-14s %5s  %12s  %12s  %12s  %12s"
                     % ("", "n", "p50", "p90", "p99", "max"))
        for name, data in scenarios.items():
            lines.append("  %s (%d runs)" % (name, data["runs"]))
            lines.append(_cdf_row("detection", data["detection_us"]))
            lines.append(_cdf_row("recovery", data["recovery_us"]))

    attribution = report.get("slo_attribution")
    if attribution:
        lines.append("")
        lines.append("SLO attribution by stage")
        lines.append("------------------------")
        for cell, row in attribution.items():
            lines.append("  %s: %d/%d runs failed"
                         % (cell, row["failed_runs"], row["runs"]))
            for stage, agg in row["stages"].items():
                worst = []
                if agg["worst_availability"] is not None:
                    worst.append("worst avail %.4f"
                                 % agg["worst_availability"])
                if agg["worst_p99_us"] is not None:
                    worst.append("worst p99 %s"
                                 % _fmt_us(agg["worst_p99_us"]))
                lines.append("    %-10s %d/%d failed%s"
                             % (stage, agg["failed"], agg["runs"],
                                ("  (%s)" % ", ".join(worst))
                                if worst else ""))
                for breach in agg["breaches"]:
                    lines.append("      breach: %s" % breach)

    latency = report.get("latency")
    if latency:
        lines.append("")
        lines.append("Campaign-wide latency (from telemetry histograms)")
        lines.append("-------------------------------------------------")
        width = max(len(name) for name in latency)
        for name, row in latency.items():
            lines.append("  %-*s  n=%d  p50=%s  p99=%s  p999=%s"
                         % (width, name, row["n"], _fmt_us(row["p50"]),
                            _fmt_us(row["p99"]), _fmt_us(row["p999"])))

    series = report.get("timeseries")
    if series:
        lines.append("")
        lines.append("Timeseries")
        lines.append("----------")
        lines.append("  %d runs sampled every %s (%d samples, %d tracks)"
                     % (series["runs_sampled"],
                        _fmt_us(series["sample_every_us"]),
                        series["samples"], len(series["tracks"])))

    if len(lines) == 2:
        lines.append("")
        lines.append("(no per-stage verdicts, recovery timelines, "
                     "telemetry or timeseries in this result)")
    return "\n".join(lines) + "\n"
