"""The metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of the telemetry plane (the trace half
lives in :mod:`repro.sim.trace`).  It follows the same zero-cost-when-
disabled contract as :class:`repro.sim.trace.Tracer`: toggling
``enabled`` swaps the instance's ``emit`` between the recording method
and a module-level no-op, so instrumentation points are free when
nobody is listening.  Hot loops never call the registry at all — they
keep plain integer counters and the harvest pass
(:mod:`repro.obs.harvest`) folds them in once per run.

This module imports nothing from the simulation stack so that low
layers (``sim.resources``) can use :class:`BusyTracker` without an
import cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "BusyTracker",
    "GaugeStat",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]

# Metric kinds accepted by MetricsRegistry.emit().
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

# Log-spaced bucket edges covering 1 µs .. 7 s: mantissas (1, 1.5, 2, 3,
# 5, 7) per decade.  Wide enough for both per-packet costs and the
# paper's ~765 ms recovery phases; values beyond the last edge land in
# the overflow bucket and are reported via the exact max.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * (10.0 ** k) for k in range(7) for m in (1.0, 1.5, 2.0, 3.0, 5.0, 7.0)
)

# Denser edges for SLO-graded delivery latency: twelve mantissas per
# decade over 1 µs .. 10 s.  Latency SLOs interpolate p999 inside a
# single bucket, so the low decades need finer resolution than the
# recovery-phase buckets above.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    m * (10.0 ** k) for k in range(7)
    for m in (1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2)
)


class BusyTracker:
    """Busy-interval accounting: engaged spans accumulate into a total.

    This is the primitive behind ``Resource.utilization`` (and usable by
    anything that alternates between busy and idle).  The arithmetic is
    exactly the hand-rolled original — one ``busy_time += now - since``
    per engaged interval — so refactoring onto it is float-identical.
    """

    __slots__ = ("busy_time", "_since")

    def __init__(self) -> None:
        self.busy_time = 0.0
        self._since: Optional[float] = None

    def engage(self, now: float) -> None:
        """Mark the tracked thing busy as of ``now`` (idempotent)."""
        if self._since is None:
            self._since = now

    def release(self, now: float) -> None:
        """Mark it idle; accumulates the closed interval (idempotent)."""
        if self._since is not None:
            self.busy_time += now - self._since
            self._since = None

    def total(self, now: float) -> float:
        """Accumulated busy time, including a still-open interval."""
        if self._since is not None:
            return self.busy_time + (now - self._since)
        return self.busy_time

    def ckpt_state(self) -> dict:
        """Snapshot contract: closed total plus the open interval start."""
        return {"busy_time": self.busy_time, "since": self._since}


class GaugeStat:
    """Summary of a sampled value: n, total, min, max (mean derivable)."""

    __slots__ = ("n", "total", "min", "max")

    def __init__(self, n: int = 0, total: float = 0.0,
                 min: Optional[float] = None, max: Optional[float] = None):
        self.n = n
        self.total = total
        self.min = min
        self.max = max

    def set(self, value: float) -> None:
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        return self.total / self.n if self.n else None

    def copy(self) -> "GaugeStat":
        return GaugeStat(self.n, self.total, self.min, self.max)

    def merge(self, other: "GaugeStat") -> None:
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_doc(self) -> Dict[str, Any]:
        return {"n": self.n, "total": self.total,
                "min": self.min, "max": self.max}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "GaugeStat":
        return cls(doc["n"], doc["total"], doc["min"], doc["max"])

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, GaugeStat):
            return NotImplemented
        return (self.n, self.total, self.min, self.max) == \
               (other.n, other.total, other.min, other.max)


class Histogram:
    """Fixed-bucket histogram with exact n/total/min/max sidecars.

    ``counts`` has ``len(edges) + 1`` slots; the last is the overflow
    bucket.  Percentiles interpolate linearly within the bucket that
    crosses the target rank and are clamped to the observed
    ``[min, max]`` — a constant distribution (every FTD reload costs
    exactly ``MCP_RELOAD_US``) therefore reports the exact constant at
    every percentile.
    """

    __slots__ = ("edges", "counts", "n", "total", "min", "max")

    def __init__(self, edges: Tuple[float, ...] = DEFAULT_BUCKETS,
                 counts: Optional[List[int]] = None, n: int = 0,
                 total: float = 0.0, min: Optional[float] = None,
                 max: Optional[float] = None):
        self.edges = tuple(edges)
        self.counts = list(counts) if counts is not None \
            else [0] * (len(self.edges) + 1)
        if len(self.counts) != len(self.edges) + 1:
            raise ValueError("counts must have len(edges) + 1 slots")
        self.n = n
        self.total = total
        self.min = min
        self.max = max

    def observe(self, value: float) -> None:
        edges = self.edges
        lo, hi = 0, len(edges)
        while lo < hi:                       # first edge >= value
            mid = (lo + hi) // 2
            if edges[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        return self.total / self.n if self.n else None

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile (q in [0, 100]), min/max-clamped."""
        if self.n == 0:
            return None
        target = (q / 100.0) * self.n
        if target <= 0:
            return self.min
        cum = 0
        for index, count in enumerate(self.counts):
            if count and cum + count >= target:
                lower = self.edges[index - 1] if index > 0 else 0.0
                upper = self.edges[index] if index < len(self.edges) \
                    else (self.max if self.max is not None else lower)
                value = lower + ((target - cum) / count) * (upper - lower)
                if self.min is not None and value < self.min:
                    value = self.min
                if self.max is not None and value > self.max:
                    value = self.max
                return value
            cum += count
        return self.max

    def copy(self) -> "Histogram":
        return Histogram(self.edges, list(self.counts), self.n,
                         self.total, self.min, self.max)

    def merge(self, other: "Histogram") -> None:
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_doc(self) -> Dict[str, Any]:
        return {"edges": list(self.edges), "counts": list(self.counts),
                "n": self.n, "total": self.total,
                "min": self.min, "max": self.max}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "Histogram":
        return cls(tuple(doc["edges"]), doc["counts"], doc["n"],
                   doc["total"], doc["min"], doc["max"])

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.edges == other.edges and self.counts == other.counts
                and self.n == other.n and self.total == other.total
                and self.min == other.min and self.max == other.max)


def _noop_emit(name: str, value: float = 1.0, kind: str = COUNTER,
               edges: Optional[Tuple[float, ...]] = None) -> None:
    """Placeholder ``emit`` installed while a registry is disabled."""


class MetricsRegistry:
    """Collects named counters, gauges and histograms.

    A disabled registry costs one attribute lookup plus a no-op call per
    ``emit`` — toggling :attr:`enabled` swaps the instance's ``emit``
    between the recording method and a module-level no-op, exactly the
    :class:`repro.sim.trace.Tracer` trick.  ``inc``/``observe``/``gauge``
    are conveniences that route through ``emit``, so the single swap
    disables every entry point.
    """

    def __init__(self, enabled: bool = True):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.enabled = enabled  # property: installs the right emit

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self._enabled:
            # Restore the recording method (remove the instance shadow).
            self.__dict__.pop("emit", None)
        else:
            self.__dict__["emit"] = _noop_emit

    def emit(self, name: str, value: float = 1.0,
             kind: str = COUNTER,
             edges: Optional[Tuple[float, ...]] = None) -> None:
        """Record one sample.

        ``edges`` selects the bucket layout of a histogram on its
        *first* sample; later samples must agree (snapshots of the same
        metric merge across runs, and merging demands equal edges).
        """
        if not self._enabled:
            return
        if kind == COUNTER:
            self.counters[name] = self.counters.get(name, 0) + value
        elif kind == HISTOGRAM:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(
                    edges=edges if edges is not None else DEFAULT_BUCKETS)
            elif edges is not None and tuple(edges) != hist.edges:
                raise ValueError(
                    "histogram %r already uses different bucket edges"
                    % (name,))
            hist.observe(value)
        elif kind == GAUGE:
            stat = self.gauges.get(name)
            if stat is None:
                stat = self.gauges[name] = GaugeStat()
            stat.set(value)
        else:
            raise ValueError("unknown metric kind %r" % (kind,))

    # Conveniences — all funnel through emit, so the disabled shadow
    # covers them too.

    def inc(self, name: str, value: float = 1.0) -> None:
        self.emit(name, value, COUNTER)

    def observe(self, name: str, value: float,
                edges: Optional[Tuple[float, ...]] = None) -> None:
        self.emit(name, value, HISTOGRAM, edges=edges)

    def gauge(self, name: str, value: float) -> None:
        self.emit(name, value, GAUGE)

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges={k: v.copy() for k, v in self.gauges.items()},
            histograms={k: v.copy() for k, v in self.histograms.items()})

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


class MetricsSnapshot:
    """An immutable-by-convention capture of a registry, mergeable.

    ``merge`` is commutative and associative — counters sum, gauges
    combine (n/total sum, min/max extremes), histograms sum bucket
    counts — so folding per-run snapshots in *any* order produces the
    same aggregate.  That is what lets fork-server children, pool
    workers and the serial loop agree byte for byte.
    """

    def __init__(self, counters: Optional[Dict[str, float]] = None,
                 gauges: Optional[Dict[str, GaugeStat]] = None,
                 histograms: Optional[Dict[str, Histogram]] = None):
        self.counters = counters if counters is not None else {}
        self.gauges = gauges if gauges is not None else {}
        self.histograms = histograms if histograms is not None else {}

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into self (in place); returns self."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, stat in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = stat.copy()
            else:
                mine.merge(stat)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)
        return self

    @classmethod
    def merged(cls, snapshots: Iterable["MetricsSnapshot"]) \
            -> "MetricsSnapshot":
        out = cls()
        for snap in snapshots:
            out.merge(snap)
        return out

    def to_doc(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": {k: v.to_doc() for k, v in self.gauges.items()},
            "histograms": {k: v.to_doc()
                           for k, v in self.histograms.items()},
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters=dict(doc.get("counters", {})),
            gauges={k: GaugeStat.from_doc(v)
                    for k, v in doc.get("gauges", {}).items()},
            histograms={k: Histogram.from_doc(v)
                        for k, v in doc.get("histograms", {}).items()})

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (self.counters == other.counters
                and self.gauges == other.gauges
                and self.histograms == other.histograms)
