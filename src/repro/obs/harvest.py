"""The harvest pass: fold a finished cluster's counters into the registry.

Hot loops never talk to the registry — they keep the plain integer
counters they always had (``mcp.stats``, ``cpu.instructions_retired``,
link/switch totals, ...).  After a run's outcome is classified, the
experiment calls :func:`harvest_cluster` once; when telemetry is off the
call returns immediately, and when it is on the pass walks the cluster
and emits every counter, gauge and latency histogram in one sweep.

Because the harvest runs *after* classification and only reads state,
it cannot perturb the simulation: outcomes are byte-identical with
telemetry on or off.
"""

from __future__ import annotations

from typing import Optional

from ..sim.trace import TraceRecord
from . import runtime
from .spans import emit_recovery_spans

__all__ = ["harvest_cluster", "harvest_load"]

_JSON_SCALARS = (int, float, str, bool, type(None))


def _sanitize_records(records):
    """Copies of ``records`` with non-JSON detail values repr()'d.

    Trace details may hold live simulation objects (events, tuples of
    ports); stashed records cross process boundaries (fork-server pipe,
    pool pickling), so they are flattened to scalars at harvest time —
    the same fallback ``chrome_trace_doc`` applies at export time.
    """
    out = []
    for r in records:
        details = {k: v if isinstance(v, _JSON_SCALARS) else repr(v)
                   for k, v in r.details.items()}
        out.append(TraceRecord(r.time, r.source, r.kind, details))
    return out


def harvest_cluster(cluster, *, fault_at: Optional[float] = None) -> None:
    """Harvest one finished run: metrics into the active registry,
    spans + records into the trace stash.  No-op when telemetry is off.

    ``fault_at`` (absolute simulated time of the injected fault, when
    the experiment knows it) enables the ``recovery.detection_us``
    histogram — fault occurrence to the FATAL interrupt.
    """
    # Lazily-parked MCPs carry whole housekeeping windows as pending
    # arithmetic; settle them so every counter below reads as if the
    # ticks had run live.  This happens before the telemetry check on
    # purpose: the fold is deterministic and identical whether telemetry
    # is on or off, which keeps post-harvest cluster state — and any
    # outcome fields read from it later — byte-identical either way.
    for node in cluster.nodes:
        mcp = node.driver.mcp
        settle = getattr(mcp, "settle_idle", None)
        if settle is not None:
            settle()

    # Continuous plane: the sampler's tracks and the flight recorder's
    # end instant are fixed here, where the run is known finished.  Both
    # handles are None unless their intents armed them at build time.
    sampler = getattr(cluster, "sampler", None)
    if sampler is not None:
        runtime.stash_timeseries(sampler.to_doc())
    flight = getattr(cluster, "flight", None)
    if flight is not None:
        flight.note_end(cluster.sim.now)

    registry = runtime.active_registry()
    tracing = runtime.tracing()
    if registry is None and not tracing:
        return

    if tracing:
        emit_recovery_spans(cluster)
        records = _sanitize_records(cluster.tracer.records)
        if sampler is not None:
            records.extend(sampler.counter_records())
        runtime.stash_trace(records)
    if registry is None:
        return

    inc = registry.inc
    gauge = registry.gauge
    observe = registry.observe

    # -- simulation core -------------------------------------------------------
    sim = cluster.sim
    inc("sim.events_scheduled", next(sim._seq))
    gauge("sim.events_pending", len(sim._queue))
    gauge("sim.events_inert", len(sim.inert))
    gauge("sim.time_us", sim.now)

    # -- per node: LANai, SRAM, MCP, DMA, NIC, driver, ports -------------------
    for node in cluster.nodes:
        nic = node.nic
        mcp = node.driver.mcp        # may be a post-recovery reload
        cpu = mcp.cpu
        if cpu is not None:
            inc("lanai.instructions_retired", cpu.instructions_retired)
            inc("lanai.block_hits", cpu.block_hits)
            inc("lanai.blocks_translated", cpu.blocks_translated)
            inc("lanai.busy_us", cpu.busy_time)
        inc("sram.invalidations", nic.sram.invalidations)
        for key, value in mcp.stats.items():
            inc("mcp.%s" % key, value)
        inc("mcp.busy_us", mcp.busy_time)
        inc("mcp.send_busy_us", mcp.send_busy_time)
        inc("mcp.recv_busy_us", mcp.recv_busy_time)
        inc("mcp.l_timer_invocations", mcp.l_timer_invocations)
        inc("mcp.ticks_absorbed", mcp.ticks_absorbed)
        # Only lazy fabrics ever park; keep the counter out of eager
        # clusters' reports so pre-lazy telemetry stays byte-identical.
        if getattr(mcp, "ticks_parked", 0):
            inc("mcp.ticks_parked", mcp.ticks_parked)
        watchdog_arms = getattr(mcp, "watchdog_arms", None)
        if watchdog_arms is not None:                 # FTGM firmware only
            inc("mcp.watchdog_arms", watchdog_arms)
            inc("mcp.seq_rewinds", mcp.seq_rewinds)
        inc("dma.transactions", nic.dma.transactions)
        inc("dma.errors", nic.dma.errors)
        inc("pci.bytes_moved", nic.pci.bytes_moved)
        inc("nic.resets", nic.resets)
        inc("nic.dropped_arrivals", nic.dropped_arrivals)
        fatal = getattr(node.driver, "fatal_interrupts", None)
        if fatal is not None:                         # FTGM driver only
            inc("driver.fatal_interrupts", fatal)
        for port in node.driver.ports.values():
            inc("gm.port.sends_completed", port.sends_completed)
            inc("gm.port.sends_errored", port.sends_errored)
            inc("gm.port.messages_received", port.messages_received)
            recoveries = getattr(port, "recoveries", None)
            if recoveries is not None:                # FTGM port only
                inc("ftgm.port.recoveries", recoveries)
                inc("ftgm.port.route_changes", port.route_changes)
                for took in port.recovery_times:
                    observe("recovery.port_recover_us", took)

    # -- fabric ----------------------------------------------------------------
    for link in cluster.fabric.links:
        inc("link.packets_carried", link.packets_carried)
        inc("link.packets_dropped", link.packets_dropped)
        inc("link.packets_duplicated", link.packets_duplicated)
        inc("link.packets_corrupted", link.packets_corrupted)
        inc("link.cuts", link.cuts)
    for switch in cluster.fabric.switches:
        inc("switch.forwarded", switch.forwarded)
        inc("switch.absorbed", switch.absorbed)
        inc("switch.misrouted", switch.misrouted)
        inc("switch.dead_port_drops", switch.dead_port_drops)

    # -- FTD timelines: counters plus Table-3-style latency histograms ---------
    for ftd in cluster.ftds():
        inc("ftd.recoveries", len(ftd.recoveries))
        inc("ftd.reroutes", len(ftd.reroutes))
        inc("ftd.false_alarms", ftd.false_alarms)
        for record in ftd.recoveries:
            for label, start, end in record.segments():
                if 0 < start <= end:
                    observe("recovery.phase.%s" % label, end - start)
            if not record.false_alarm:
                observe("recovery.total_us",
                        record.events_posted_at - record.interrupt_at)
                if fault_at is not None:
                    observe("recovery.detection_us",
                            record.interrupt_at - fault_at)
        for record in ftd.reroutes:
            for label, start, end in record.segments():
                if 0 < start <= end:
                    observe("reroute.phase.%s" % label, end - start)


def harvest_load(result, observations=None) -> None:
    """Harvest one finished load run into the active registry.

    ``result`` is a :class:`repro.load.generator.LoadRunResult`;
    ``observations`` the per-stage fold from
    :func:`repro.load.verdict.observe_stages` (computed here when the
    caller has not already graded the run).  Like
    :func:`harvest_cluster` this runs after grading and only *reads*
    run state, so SLO verdicts are byte-identical telemetry on or off.
    """
    registry = runtime.active_registry()
    if registry is None:
        return
    from ..load.verdict import observe_stages

    if observations is None:
        observations = observe_stages(result)
    inc = registry.inc
    gauge = registry.gauge

    inc("load.sends_ok", result.sends_ok)
    inc("load.sends_errored", result.sends_errored)
    inc("load.rejected", result.rejected)
    inc("load.unknown_deliveries", result.unknown_deliveries)
    inc("load.churn_executed", result.churn_executed)

    gauge("load.horizon_us", result.horizon - result.started_at)
    for obs in observations:
        prefix = "load.stage.%s" % obs.name
        inc("%s.offered" % prefix, obs.offered)
        inc("%s.accepted" % prefix, obs.accepted)
        inc("%s.completed" % prefix, obs.completed)
        inc("%s.lost" % prefix, obs.lost)
        inc("%s.duplicated" % prefix, obs.duplicated)
        gauge("%s.availability" % prefix, obs.availability)
        if obs.latency.n == 0:
            continue
        # The per-message latencies only exist as the verdict engine's
        # local histograms; fold read-only copies straight in (observe()
        # replays values, which we no longer have).
        for name in ("%s.delivery_us" % prefix, "load.delivery_us"):
            hist = registry.histograms.get(name)
            if hist is None:
                registry.histograms[name] = obs.latency.copy()
            else:
                hist.merge(obs.latency)
