"""Ablation A2 — the watchdog interval (IT1 period).

The paper sets IT1 "to a value just slightly greater than 800us", the
maximum observed L_timer() gap.  This ablation sweeps the interval:

* too small (below the worst-case L_timer gap) -> false alarms, each
  costing an FTD wakeup + magic-word probe;
* larger -> no false alarms but proportionally slower detection.

The measured max L_timer gap itself (the 800us figure) is reported too.
"""


from repro.cluster import build_cluster
from repro.gm import constants as C
from repro.payload import Payload

INTERVALS = [300.0, 500.0, 800.0, 1000.0, 1500.0, 3000.0]


def _set_watchdog(cluster, interval):
    for node in cluster.nodes:
        node.mcp.watchdog_interval_us = interval
        node.nic.timers[1].set_us(interval)


def _busy_traffic(cluster, duration_us):
    """Bidirectional load to stretch L_timer gaps, for duration_us."""
    sim = cluster.sim
    payload = Payload.phantom(32_768, tag=1)

    def side(me, peer):
        port = yield from cluster[me].driver.open_port(3)
        for _ in range(8):
            yield from port.provide_receive_buffer(32_768)
        end = sim.now + duration_us
        while sim.now < end:
            try:
                yield from port.send(payload, peer, 3)
            except Exception:
                pass  # token exhaustion: just keep consuming events
            yield from port.receive(timeout=200.0)

    cluster[0].host.spawn(side(0, 1), "busy0")
    cluster[1].host.spawn(side(1, 0), "busy1")
    sim.run(until=sim.now + duration_us + 10_000.0)


def _detection_latency(interval):
    cluster = build_cluster(2, flavor="ftgm")
    _set_watchdog(cluster, interval)
    sim = cluster.sim
    sim.run(until=sim.now + 5_000.0)
    fault_at = sim.now
    cluster[1].mcp.die("ablation hang")
    deadline = sim.now + interval * 4 + 10_000.0
    while cluster[1].driver.fatal_interrupts == 0 \
            and sim.peek() <= deadline:
        sim.step()
    return sim.now - fault_at


def test_ablation_watchdog_interval(benchmark, report):
    def sweep():
        rows = []
        for interval in INTERVALS:
            cluster = build_cluster(2, flavor="ftgm")
            _set_watchdog(cluster, interval)
            _busy_traffic(cluster, 300_000.0)
            false_alarms = cluster[1].driver.ftd.false_alarms \
                + cluster[0].driver.ftd.false_alarms
            max_gap = max(node.mcp.l_timer_max_gap
                          for node in cluster.nodes)
            detection = _detection_latency(interval)
            rows.append((interval, false_alarms, max_gap, detection))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation A2: watchdog interval sweep (300ms busy traffic)",
             "%12s %14s %18s %16s" % ("IT1 (us)", "false alarms",
                                      "max L_timer gap", "detection (us)")]
    for interval, alarms, gap, detection in rows:
        lines.append("%12.0f %14d %18.1f %16.1f"
                     % (interval, alarms, gap, detection))
    lines.append("")
    lines.append("paper: max observed L_timer gap ~800us; IT1 set just "
                 "above it (we use %.0fus)" % C.WATCHDOG_INTERVAL_US)
    report("ablation_watchdog", "\n".join(lines))

    by_interval = {interval: (alarms, gap, detection)
                   for interval, alarms, gap, detection in rows}
    # Under load, L_timer gaps stretch well past the idle period.
    assert max(gap for _, gap, _ in by_interval.values()) \
        > C.L_TIMER_INTERVAL_US
    # Short intervals below the worst-case gap produce false alarms;
    # the paper's choice (>= ~1000us) produces none.
    assert by_interval[300.0][0] > 0
    assert by_interval[1000.0][0] == 0
    assert by_interval[3000.0][0] == 0
    # Detection latency grows with the interval (the price of margin).
    assert by_interval[3000.0][2] > by_interval[1000.0][2]
    # All real hangs detected within ~one interval regardless of choice.
    for interval, (_, _, detection) in by_interval.items():
        assert detection <= interval + 50.0
