"""Microbenchmarks for the simulation-stack fast paths.

Three numbers capture the cost of everything this project does:

* **kernel events/sec** — raw discrete-event throughput: processes
  yielding timeouts, the pattern every host, NIC, DMA engine and daemon
  reduces to.
* **LANai instructions/sec** — interpreted firmware throughput: a tight
  ALU/branch loop on :class:`~repro.lanai.cpu.LanaiCpu`, the engine
  behind every interpreted ``send_chunk`` in the fault-injection study.
* **campaign runs/sec** — end-to-end wall clock of a Table 1 style
  fault-injection campaign (the dominant cost of the reproduction).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/perf_harness.py --label current

Each invocation merges its results into ``BENCH_perf.json`` under the
given label, so the file accumulates a before/after trajectory
(``baseline`` = pre-optimization, ``current`` = this tree).  The harness
only uses public APIs and probes for optional parameters (``workers``),
so it runs unchanged against older revisions of the stack.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if os.path.isdir(os.path.join(REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_perf.json")


def bench_kernel_events(total_yields: int = 200_000,
                        procs: int = 100) -> dict:
    """Events/sec: ``procs`` processes each yielding timeouts."""
    from repro.sim import Simulator

    sim = Simulator()
    per_proc = total_yields // procs

    def worker():
        timeout = sim.timeout
        for _ in range(per_proc):
            yield timeout(1.0)

    for _ in range(procs):
        sim.spawn(worker())
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    yields = per_proc * procs
    return {
        "yields": yields,
        "wall_s": round(wall, 4),
        "events_per_sec": round(yields / wall, 1),
    }


def bench_kernel_wakeups(total_yields: int = 100_000) -> dict:
    """Events/sec for the event/succeed ping-pong (Store-style wakeups)."""
    from repro.sim import Simulator

    sim = Simulator()
    box = {"ev": None}

    def producer():
        for _ in range(total_yields):
            yield sim.timeout(1.0)
            if box["ev"] is not None:
                box["ev"].succeed("item")
                box["ev"] = None

    def consumer():
        while True:
            box["ev"] = sim.event()
            got = yield box["ev"]
            if got is None:  # pragma: no cover - defensive
                return

    sim.spawn(producer())
    sim.spawn(consumer())
    t0 = time.perf_counter()
    sim.run(until=total_yields + 1.0)
    wall = time.perf_counter() - t0
    return {
        "yields": total_yields,
        "wall_s": round(wall, 4),
        "events_per_sec": round(2 * total_yields / wall, 1),
    }


_LOOP_ITERS = 20_000
_LOOP_ENTRY = 0x100


def _loop_program():
    """A 7-instruction ALU/branch loop, ``_LOOP_ITERS`` iterations."""
    from repro.lanai import isa

    Ins = isa.Instruction
    ops = isa.BY_MNEMONIC
    words = [
        Ins(ops["addi"], rd=1, ra=0, imm=_LOOP_ITERS),   # r1 = N
        # loop:
        Ins(ops["addi"], rd=2, ra=2, imm=1),             # r2 += 1
        Ins(ops["xor"], rd=3, ra=2, rb=1),
        Ins(ops["add"], rd=4, ra=3, rb=2),
        Ins(ops["sub"], rd=5, ra=4, rb=3),
        Ins(ops["slt"], rd=6, ra=5, rb=1),
        Ins(ops["addi"], rd=1, ra=1, imm=-1),            # r1 -= 1
        Ins(ops["bne"], ra=1, rb=0, imm=-7),             # -> loop
        Ins(ops["jr"], ra=15),                           # return
    ]
    return [isa.encode(w) for w in words]


def bench_lanai_interpreter(repeats: int = 3) -> dict:
    """Interpreted instructions/sec on a steady-state firmware loop."""
    from repro.hw.sram import Sram
    from repro.lanai.bus import MemoryBus
    from repro.lanai.cpu import LanaiCpu
    from repro.sim import Simulator

    sim = Simulator()
    sram = Sram(64 * 1024)
    sram.write_words(_LOOP_ENTRY, _loop_program())
    cpu = LanaiCpu(sim, MemoryBus(sram))

    executed = 0
    t0 = time.perf_counter()
    for _ in range(repeats):
        outcomes = []

        def run():
            outcome = yield from cpu.run_routine(_LOOP_ENTRY,
                                                 fuel=10 * _LOOP_ITERS)
            outcomes.append(outcome)

        sim.spawn(run())
        sim.run()
        assert outcomes and outcomes[0].status == "done", outcomes
        executed += outcomes[0].instructions
    wall = time.perf_counter() - t0
    return {
        "instructions": executed,
        "wall_s": round(wall, 4),
        "instr_per_sec": round(executed / wall, 1),
    }


def bench_campaign(runs: int = 200, workers: int = 1, seed: int = 2003,
                   messages: int = 16) -> dict:
    """Wall clock of a Table 1 campaign (the paper-scale workload)."""
    from repro.faults import run_campaign

    kwargs = {"runs": runs, "seed": seed, "messages": messages}
    supports_workers = \
        "workers" in inspect.signature(run_campaign).parameters
    if supports_workers:
        kwargs["workers"] = workers
    t0 = time.perf_counter()
    result = run_campaign(**kwargs)
    wall = time.perf_counter() - t0
    return {
        "runs": runs,
        "workers": workers if supports_workers else 1,
        "wall_s": round(wall, 3),
        "runs_per_sec": round(runs / wall, 3),
        "counts": dict(result.counts),
    }


def _best(bench, rate_key: str, samples: int = 3) -> dict:
    """Best-of-N: the machine's fastest run is its least-disturbed one."""
    results = [bench() for _ in range(samples)]
    best = max(results, key=lambda r: r[rate_key])
    best["samples"] = samples
    return best


def run_all(campaign_runs: int = 200, workers: int = 1,
            quick: bool = False) -> dict:
    scale = 10 if quick else 1
    samples = 1 if quick else 3
    results = {
        "kernel_timeouts": _best(
            lambda: bench_kernel_events(200_000 // scale),
            "events_per_sec", samples),
        "kernel_wakeups": _best(
            lambda: bench_kernel_wakeups(100_000 // scale),
            "events_per_sec", samples),
        "lanai_interpreter": _best(
            lambda: bench_lanai_interpreter(repeats=1 if quick else 3),
            "instr_per_sec", samples),
        "campaign": bench_campaign(campaign_runs, workers),
    }
    results["python"] = "%d.%d.%d" % sys.version_info[:3]
    try:
        results["cpus"] = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        results["cpus"] = os.cpu_count()
    return results


def merge_into(path: str, label: str, results: dict) -> dict:
    doc = {"schema": 1, "entries": {}}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
        doc.setdefault("entries", {})
    results["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    doc["entries"][label] = results
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="entry name in BENCH_perf.json")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--campaign-runs", type=int, default=200)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="10x smaller sizes (CI smoke)")
    args = parser.parse_args(argv)

    results = run_all(args.campaign_runs, args.workers, quick=args.quick)
    merge_into(args.out, args.label, results)
    for name in ("kernel_timeouts", "kernel_wakeups"):
        print("%-18s %12.0f events/sec" % (name,
                                           results[name]["events_per_sec"]))
    print("%-18s %12.0f instr/sec" % ("lanai_interpreter",
                                      results["lanai_interpreter"]
                                      ["instr_per_sec"]))
    print("%-18s %12.2f runs/sec (%d runs, workers=%d, %.1fs)"
          % ("campaign", results["campaign"]["runs_per_sec"],
             results["campaign"]["runs"], results["campaign"]["workers"],
             results["campaign"]["wall_s"]))
    print("wrote %s [%s]" % (args.out, args.label))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
