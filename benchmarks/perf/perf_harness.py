"""Microbenchmark harness: thin wrapper over :mod:`repro.exp.perfbench`.

The benchmarks themselves live in the package (``repro.exp.perfbench``)
so the experiment engine can drive them too (``python -m repro run
perf``).  This script keeps the historical entry point and the
``BENCH_perf.json`` before/after ledger:

    PYTHONPATH=src python benchmarks/perf/perf_harness.py --label current

Each invocation merges its results into ``BENCH_perf.json`` under the
given label, alongside a run manifest (spec hash, seed, git revision,
wall time) so every recorded number is traceable to the exact
configuration that produced it.  The ledger accumulates the perf
trajectory across PRs: ``baseline`` (the pre-optimization tree) is
frozen — the harness refuses to overwrite it — and re-using any other
existing label appends a timestamped variant (``pr4-20260806T120000``)
instead of clobbering history.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if os.path.isdir(os.path.join(REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.exp.perfbench import (  # noqa: E402  (path bootstrap above)
    bench_campaign,
    bench_kernel_events,
    bench_kernel_wakeups,
    bench_lanai_interpreter,
    render_results,
    run_all,
)

__all__ = [
    "bench_campaign",
    "bench_kernel_events",
    "bench_kernel_wakeups",
    "bench_lanai_interpreter",
    "merge_into",
    "run_all",
    "main",
]

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_perf.json")


def _validate_entry(label: str, results: dict) -> None:
    """Reject new entries that hide the hardware or parallelism axes.

    A throughput number is meaningless without the execution shape that
    produced it, so every entry must record the ``cpus`` it ran on, and
    every sub-result that reports ``runs_per_sec`` (the campaign-style
    benchmarks, whose wall clock scales with parallel fan-out) must say
    how many ``workers`` processes and simulator ``shards`` were in
    play, and whether the ``branch``-at-injection executor (one shared
    prefix per group) produced the number — a branched runs/s is not
    comparable to a cold-boot one without that flag.  Applies to *new*
    merges only — historical entries predate these axes and stay as
    recorded.
    """
    if not isinstance(results.get("cpus"), int):
        raise SystemExit(
            "refusing to record entry %r without the 'cpus' it ran on "
            "(perfbench.environment_info() supplies it)" % label)
    for name, sub in results.items():
        if not isinstance(sub, dict) or "runs_per_sec" not in sub:
            continue
        missing = [axis for axis in ("workers", "shards", "branch")
                   if axis not in sub]
        if missing:
            raise SystemExit(
                "refusing to record entry %r: sub-result %r reports "
                "runs_per_sec without its %s axis"
                % (label, name, "/".join(missing)))


def merge_into(path: str, label: str, results: dict,
               manifest: dict = None) -> str:
    """Append ``results`` to the ledger; never rewrite history.

    ``baseline`` is frozen once recorded.  Any other label that already
    exists gets a timestamped suffix, so repeated runs accumulate as
    distinct entries and the cross-PR perf trajectory stays intact.
    New entries must carry their execution shape (see
    :func:`_validate_entry`).  Returns the label actually written.
    """
    _validate_entry(label, results)
    doc = {"schema": 1, "entries": {}}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
        doc.setdefault("entries", {})
    if label in doc["entries"]:
        if label == "baseline":
            raise SystemExit(
                "refusing to overwrite the frozen 'baseline' entry in %s"
                % path)
        label = "%s-%s" % (label, time.strftime("%Y%m%dT%H%M%S"))
    results["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if manifest is not None:
        results["manifest"] = manifest
    doc["entries"][label] = results
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return label


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="entry name in BENCH_perf.json")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--campaign-runs", type=int, default=200)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="10x smaller sizes (CI smoke)")
    args = parser.parse_args(argv)

    from repro.exp.registry import get_experiment
    from repro.exp.results import RunManifest

    spec = get_experiment("perf").build_spec({
        "campaign_runs": args.campaign_runs,
        "campaign_workers": args.workers,
        "quick": args.quick,
    })
    t0 = time.perf_counter()
    results = run_all(args.campaign_runs, args.workers, quick=args.quick)
    wall = time.perf_counter() - t0
    manifest = RunManifest.collect(spec.spec_hash, spec.seed, wall)
    label = merge_into(args.out, args.label, results,
                       manifest=manifest.to_dict())
    print(render_results(results))
    print("wrote %s [%s]" % (args.out, label))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
