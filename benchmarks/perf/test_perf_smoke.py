"""Smoke-run the perf harness at 10x-reduced sizes.

Not part of tier-1 (``testpaths`` excludes ``benchmarks/``); CI invokes
this file explicitly so a refactor can't silently break the harness the
before/after numbers depend on.
"""

import json

import pytest

from perf_harness import (
    bench_campaign,
    bench_kernel_events,
    bench_kernel_wakeups,
    bench_lanai_interpreter,
    merge_into,
)


@pytest.mark.perf
def test_kernel_events_smoke():
    result = bench_kernel_events(total_yields=20_000)
    assert result["yields"] == 20_000
    assert result["events_per_sec"] > 0


@pytest.mark.perf
def test_kernel_wakeups_smoke():
    result = bench_kernel_wakeups(total_yields=5_000)
    assert result["events_per_sec"] > 0


@pytest.mark.perf
def test_interpreter_smoke():
    result = bench_lanai_interpreter(repeats=1)
    assert result["instructions"] > 100_000
    assert result["instr_per_sec"] > 0


@pytest.mark.perf
def test_campaign_smoke():
    result = bench_campaign(runs=4, workers=2, seed=2003)
    assert result["runs"] == 4
    assert sum(result["counts"].values()) == 4


@pytest.mark.perf
def test_merge_into_accumulates(tmp_path):
    out = tmp_path / "bench.json"
    assert merge_into(str(out), "a", {"x": 1, "cpus": 4}) == "a"
    assert merge_into(str(out), "b", {"y": 2, "cpus": 4}) == "b"
    on_disk = json.loads(out.read_text())
    assert set(on_disk["entries"]) == {"a", "b"}
    assert on_disk["entries"]["a"]["x"] == 1


@pytest.mark.perf
def test_merge_into_records_manifest(tmp_path):
    out = tmp_path / "bench.json"
    manifest = {"spec_hash": "abc", "seed": 2003, "git_rev": "deadbeef",
                "wall_time_s": 1.0, "recorded_at": "2026-01-01T00:00:00"}
    assert merge_into(str(out), "a", {"x": 1, "cpus": 4},
                      manifest=manifest) == "a"
    doc = json.loads(out.read_text())
    assert doc["entries"]["a"]["manifest"] == manifest


@pytest.mark.perf
def test_harness_main_stamps_manifest(tmp_path):
    from perf_harness import main

    out = tmp_path / "bench.json"
    assert main(["--quick", "--campaign-runs", "2",
                 "--out", str(out), "--label", "smoke"]) == 0
    entry = json.loads(out.read_text())["entries"]["smoke"]
    manifest = entry["manifest"]
    assert set(manifest) == {"spec_hash", "seed", "git_rev",
                             "wall_time_s", "recorded_at"}
    assert manifest["seed"] == 2003
