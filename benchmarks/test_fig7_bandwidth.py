"""Figure 7 — bidirectional bandwidth vs message length, GM vs FTGM.

Shape expectations from the paper: both curves rise from DMA/packet-rate
limits at small sizes toward ~92 MB/s for long messages; FTGM tracks GM
closely ("imposes no appreciable performance degradation"); the 4 KB
fragmentation produces a jagged pattern in the mid range (a size just
above a multiple of 4 KB pays a whole extra packet).
"""

import pytest
from conftest import env_int

from repro.analysis import Series, render_ascii, to_csv
from repro.cluster import build_cluster
from repro.workloads import run_allsize

SIZES = [256, 1024, 4096, 4097, 8192, 8193, 16384, 16385, 32768,
         65536, 131072, 262144, 524288, 1048576]


def test_fig7_bandwidth_curves(benchmark, report):
    msgs = env_int("REPRO_BW_MSGS", 20)

    def sweep():
        curves = {}
        for flavor in ("gm", "ftgm"):
            series = Series(flavor)
            for size in SIZES:
                n = max(3, min(msgs, (1 << 22) // max(size, 1)))
                result = run_allsize(build_cluster(2, flavor=flavor),
                                     size, messages=n)
                series.add(size, result.bandwidth_mb_s)
            curves[flavor] = series
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gm, ftgm = curves["gm"], curves["ftgm"]
    text = render_ascii([gm, ftgm],
                        "Figure 7. Bandwidth comparison of GM and FTGM",
                        "message length (bytes)", "MB/s")
    report("fig7_bandwidth", text + "\n\n" + to_csv([gm, ftgm], "bytes"))

    # Asymptote ~92 MB/s for both.
    assert gm.y_at(1048576) == pytest.approx(92.4, rel=0.08)
    assert ftgm.y_at(1048576) == pytest.approx(92.0, rel=0.08)
    # Monotone-ish growth from small to large.
    assert gm.y_at(256) < gm.y_at(4096) < gm.y_at(1048576)
    # FTGM close on GM's heels at every size.
    for size in SIZES:
        assert ftgm.y_at(size) <= gm.y_at(size) * 1.02
        assert ftgm.y_at(size) >= gm.y_at(size) * 0.90
    # Jagged fragmentation pattern: one byte over 4 KB pays a whole
    # extra packet, so bytes/us drops at the boundary.
    assert gm.y_at(4097) < gm.y_at(4096)
    assert gm.y_at(8193) < gm.y_at(8192)
