"""Extension E4 — fault-surface breakdown of the Table 1 campaign.

Cross-tabulates injection outcomes by the corrupted instruction field,
explaining Table 1's shape mechanistically: opcode flips trend toward
hangs (invalid encodings trap), don't-care pad flips are architecturally
invisible, immediate flips split between corruption (addresses, lengths)
and benign perturbations (unverified checksum seeds, diagnostics).
"""

from conftest import env_int

from repro.faults import Category, run_campaign
from repro.faults.surface import FieldKind, analyze_surface


def test_ext_fault_surface(benchmark, report):
    runs = env_int("REPRO_T1_RUNS", 150)

    def campaign_and_analyze():
        campaign = run_campaign(runs=runs, seed=6007, messages=10)
        return campaign, analyze_surface(campaign.outcomes)

    campaign, surface = benchmark.pedantic(campaign_and_analyze,
                                           rounds=1, iterations=1)
    report("ext_fault_surface", surface.render())

    assert surface.total == runs
    # Pad bits (R-format don't-cares) are always harmless.
    if surface.field_total(FieldKind.PAD):
        assert surface.rate(FieldKind.PAD, Category.NO_IMPACT) == 1.0
    # Opcode and immediate corruption both produce real failure mass:
    # opcodes via invalid encodings, immediates via corrupted
    # addresses/offsets (bus errors, escaped branches).  Neither field
    # is anywhere near fully benign.
    assert surface.rate(FieldKind.OPCODE, Category.NO_IMPACT) < 0.9
    assert surface.rate(FieldKind.IMMEDIATE, Category.NO_IMPACT) < 0.9
    assert surface.rate(FieldKind.OPCODE, Category.LOCAL_HANG) > 0
    assert surface.rate(FieldKind.IMMEDIATE, Category.LOCAL_HANG) > 0
    # Every flip position was attributable.
    assert sum(surface.field_total(f) for f in FieldKind.ORDER) == runs
