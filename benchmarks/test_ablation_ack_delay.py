"""Ablation A1 — the delayed-ACK commit point in isolation.

FTGM moves the final-fragment ACK to after the receive DMA.  This
ablation runs an FTGM variant with plain-GM (eager) ACKs and shows:

* performance: the delayed ACK costs essentially nothing on one-way
  latency and little on bandwidth (the paper's argument for why the
  change is affordable — intermediate fragments still ACK eagerly);
* correctness: the eager-ACK variant re-opens the Figure 5 lost-message
  window even with all other FTGM machinery present.
"""


from repro.cluster import build_cluster
from repro.ftgm.driver import FtgmDriver
from repro.ftgm.mcp import FtgmMcp
from repro.workloads import run_allsize, run_pingpong


class EagerAckFtgmMcp(FtgmMcp):
    """FTGM minus deviation 3: ACK on acceptance, before the DMA."""

    name_prefix = "ftgm-eagerack"

    def ack_after_dma(self, is_final: bool) -> bool:
        return False


class EagerAckFtgmDriver(FtgmDriver):
    mcp_class = EagerAckFtgmMcp


def test_ablation_ack_delay(benchmark, report):
    def measure():
        out = {}
        for label, flavor in (("delayed-ack (FTGM)", "ftgm"),
                              ("eager-ack variant", EagerAckFtgmDriver)):
            lat = run_pingpong(build_cluster(2, flavor=flavor), 64,
                               iterations=20)
            bw = run_allsize(build_cluster(2, flavor=flavor), 1 << 20,
                             messages=4)
            out[label] = (lat.half_rtt_us, bw.bandwidth_mb_s)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation A1: delayed vs eager ACK (commit point)",
             "%-22s %14s %16s" % ("variant", "latency (us)",
                                  "bandwidth (MB/s)")]
    for label, (lat, bw) in results.items():
        lines.append("%-22s %14.2f %16.1f" % (label, lat, bw))

    delayed = results["delayed-ack (FTGM)"]
    eager = results["eager-ack variant"]
    # The commit-point change is nearly free (paper: "the impact on
    # performance is not at all significant").
    assert abs(delayed[0] - eager[0]) < 0.8          # latency
    assert abs(delayed[1] - eager[1]) / eager[1] < 0.03  # bandwidth

    # But the eager variant re-opens the Fig. 5 window: crash after the
    # ACK leaves, before the DMA lands.
    from repro.payload import Payload
    cluster = build_cluster(2, flavor=EagerAckFtgmDriver)
    sim = cluster.sim
    state = {"recv": [], "ok": None}
    ports = {}

    def opener(node, pid, key):
        ports[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    while len(ports) < 2:
        sim.step()
    cluster[1].mcp.hang_after_ack_before_dma = True

    def receiver():
        yield from ports["r"].provide_receive_buffer(256)
        while True:
            event = yield from ports["r"].receive_message()
            state["recv"].append(event.payload.data)

    def sender():
        try:
            yield from ports["s"].send_and_wait(
                Payload.from_bytes(b"at risk"), 1, 2)
            state["ok"] = True
        except Exception:
            state["ok"] = False

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    sim.run(until=sim.now + 30_000_000.0)
    lines.append("")
    lines.append("eager-ack variant under the Fig.5 crash: sender told "
                 "success=%s, receiver got message=%s"
                 % (state["ok"], bool(state["recv"])))
    report("ablation_ack_delay", "\n".join(lines))
    # The regression: message acknowledged yet never delivered.
    assert state["ok"] is True
    assert state["recv"] == []
