"""Table 1 — fault-injection outcome distribution.

Paper: 1000 single-bit flips in ``send_chunk`` while handling traffic;
categories Local Hang / Corrupted / Remote Hang / MCP Restart / Host
Crash / Other / No Impact, compared against Stott et al. (FTCS'97).

Shape expectations (absolute percentages depend on the ISA): No Impact
is the largest bucket; hangs + corrupted messages dominate the failures
(>90% of them); remote hangs, restarts and host crashes are rare.
"""

from conftest import env_int

from repro.faults import Category, run_campaign


def test_table1_fault_injection(benchmark, report):
    runs = env_int("REPRO_T1_RUNS", 150)

    def campaign():
        return run_campaign(runs=runs, seed=2003, messages=12)

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    report("table1_fault_injection", result.render())

    counts = result.counts
    assert sum(counts.values()) == runs
    # Shape assertions from the paper.
    assert counts[Category.NO_IMPACT] == max(counts.values())
    failures = runs - counts[Category.NO_IMPACT]
    if failures:
        dominant = counts[Category.LOCAL_HANG] + counts[Category.CORRUPTED]
        assert dominant / failures >= 0.85
    rare = (counts[Category.REMOTE_HANG] + counts[Category.MCP_RESTART]
            + counts[Category.HOST_CRASH] + counts[Category.OTHER])
    assert rare / runs < 0.10
