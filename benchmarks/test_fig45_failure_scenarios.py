"""Figures 4 & 5 — the duplicate- and lost-message scenarios, GM vs FTGM.

Not a performance figure but a behaviour matrix: the adversarially timed
crashes of the paper's §3 reproduce their bugs under plain GM with naive
reload, and FTGM's restored sequence state / moved commit point remove
them.
"""

from repro.faults.scenarios import run_figure4, run_figure5


def test_fig45_failure_matrix(benchmark, report):
    def run_matrix():
        return {
            ("fig4", "gm"): run_figure4("gm"),
            ("fig4", "ftgm"): run_figure4("ftgm"),
            ("fig5", "gm"): run_figure5("gm"),
            ("fig5", "ftgm"): run_figure5("ftgm"),
        }

    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = [
        "Figures 4 & 5: failure scenarios under naive-GM vs FTGM",
        "%-42s %8s %8s" % ("scenario", "GM", "FTGM"),
        "%-42s %8s %8s" % (
            "Fig 4: duplicate delivered after crash",
            "YES" if matrix[("fig4", "gm")].duplicate else "no",
            "YES" if matrix[("fig4", "ftgm")].duplicate else "no"),
        "%-42s %8s %8s" % (
            "Fig 5: message lost (sender told success)",
            "YES" if matrix[("fig5", "gm")].lost else "no",
            "YES" if matrix[("fig5", "ftgm")].lost else "no"),
    ]
    report("fig45_failure_scenarios", "\n".join(lines))

    assert matrix[("fig4", "gm")].duplicate
    assert not matrix[("fig4", "ftgm")].duplicate
    assert matrix[("fig5", "gm")].lost
    assert not matrix[("fig5", "ftgm")].lost
