"""Extension E2 — detection coverage when the watchdog's assumption
fails.

The paper (§4.2): the IT1 watchdog "assumes that a network interface
hang does not affect the timer or the interrupt logic.  While this
assumption cannot be proved to be correct, our experimental results show
that this is most often the case."  This benchmark quantifies the
residual risk and the peer-watchdog fallback we add:

* sweep the fraction of hangs that also kill the timer logic;
* measure detection coverage and mean detection latency with the local
  watchdog alone vs local + peer.
"""


from repro.cluster import build_cluster
from repro.ftgm import PeerWatchdog
from repro.sim import SeededRng

TIMER_FAIL_FRACTIONS = [0.0, 0.3, 1.0]
HANGS_PER_CELL = 10


def _one_hang(kill_timers: bool, peer_watch: bool, seed: int):
    """Returns (detected, latency_us)."""
    cluster = build_cluster(2, flavor="ftgm", seed=seed)
    sim = cluster.sim
    watchers = []
    if peer_watch:
        watchers = [PeerWatchdog(cluster[0].driver, cluster[1].driver),
                    PeerWatchdog(cluster[1].driver, cluster[0].driver)]
        for watcher in watchers:
            watcher.start()
    sim.run(until=sim.now + 2_000.0 + (seed % 7) * 100.0)
    fault_at = sim.now
    if kill_timers:
        cluster[1].nic.kill_timers()
    cluster[1].mcp.die("coverage-experiment")
    ftd = cluster[1].driver.ftd
    # The recovery record lands only after the full ~765 ms FTD pass;
    # the *detection* time inside it is what we extract.
    deadline = sim.now + 3_000_000.0
    while not ftd.recoveries and sim.peek() <= deadline:
        sim.step()
    if not ftd.recoveries:
        return False, None
    return True, ftd.recoveries[0].interrupt_at - fault_at


def test_ext_peer_watchdog_coverage(benchmark, report):
    def sweep():
        rng = SeededRng(99, "coverage")
        rows = []
        for fraction in TIMER_FAIL_FRACTIONS:
            for peer in (False, True):
                detected = 0
                latencies = []
                for i in range(HANGS_PER_CELL):
                    kill = rng.random() < fraction
                    ok, latency = _one_hang(kill, peer, seed=1000 + i)
                    if ok:
                        detected += 1
                        latencies.append(latency)
                mean_latency = (sum(latencies) / len(latencies)
                                if latencies else float("nan"))
                rows.append((fraction, peer, detected, mean_latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Extension E2: hang-detection coverage when timer logic "
             "also fails",
             "%18s %12s %12s %18s" % ("P(timers die)", "peer watch",
                                      "detected", "mean latency (us)")]
    for fraction, peer, detected, latency in rows:
        lines.append("%18.1f %12s %9d/%-2d %18.1f"
                     % (fraction, "yes" if peer else "no",
                        detected, HANGS_PER_CELL, latency))
    report("ext_peer_watchdog", "\n".join(lines))

    cells = {(fraction, peer): (detected, latency)
             for fraction, peer, detected, latency in rows}
    # Local watchdog alone: full coverage only while the assumption
    # holds; zero coverage when every hang kills the timers.
    assert cells[(0.0, False)][0] == HANGS_PER_CELL
    assert cells[(1.0, False)][0] == 0
    # Peer watchdog restores full coverage at every fraction.
    for fraction in TIMER_FAIL_FRACTIONS:
        assert cells[(fraction, True)][0] == HANGS_PER_CELL
    # The price: peer detection is slower than IT1 when both work.
    assert cells[(1.0, True)][1] > cells[(0.0, False)][1]
