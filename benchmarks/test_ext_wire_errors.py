"""Extension E3 — GM's transparent handling of transient wire errors.

The paper (§2): "GM automatically handles transient network errors such
as dropped, corrupted or misrouted packets.  This handling is done
transparent to the user and is mainly carried out in the MCP."  This
benchmark quantifies that machinery: goodput and delivery correctness of
a bidirectional stream as the wire error rate rises, with corruption
(CRC-caught) and drops mixed.
"""


from repro.cluster import build_cluster
from repro.net.packet import PacketType
from repro.sim import SeededRng
from repro.workloads import run_allsize

ERROR_RATES = [0.0, 0.01, 0.05, 0.15]


def _lossy(cluster, rate, seed):
    rng = SeededRng(seed, "wire-errors")

    def fault(pkt):
        if pkt.ptype not in (PacketType.DATA, PacketType.ACK,
                             PacketType.NACK):
            return False
        roll = rng.random()
        if roll < rate / 2:
            return True           # dropped
        if roll < rate:
            return "corrupt"      # arrives with a bad CRC
        return False

    for link in cluster.fabric.links:
        link.fault_filter = fault


def test_ext_wire_error_transparency(benchmark, report):
    def sweep():
        rows = []
        for rate in ERROR_RATES:
            cluster = build_cluster(2, flavor="gm", seed=11)
            _lossy(cluster, rate, seed=int(rate * 1000))
            result = run_allsize(cluster, 32_768, messages=25)
            mcp = cluster[0].mcp
            peer = cluster[1].mcp
            recoveries = (mcp.stats["retransmit_rounds"]
                          + peer.stats["retransmit_rounds"]
                          + mcp.stats["nacks_sent"]
                          + peer.stats["nacks_sent"])
            rows.append((rate, result.bandwidth_mb_s,
                         mcp.stats["crc_drops"] + peer.stats["crc_drops"],
                         recoveries,
                         peer.stats["messages_delivered"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Extension E3: goodput vs wire error rate (32KB messages, "
             "bidirectional)",
             "%12s %14s %12s %14s %12s" % ("error rate", "goodput MB/s",
                                           "CRC drops", "recoveries",
                                           "delivered")]
    for rate, goodput, crc, retx, delivered in rows:
        lines.append("%12.2f %14.1f %12d %14d %12d"
                     % (rate, goodput, crc, retx, delivered))
    lines.append("")
    lines.append("every run delivered every message exactly once — the "
                 "transparency GM promises; errors cost goodput only")
    report("ext_wire_errors", "\n".join(lines))

    by_rate = {rate: (goodput, crc, retx, delivered)
               for rate, goodput, crc, retx, delivered in rows}
    # Correctness survives every error rate (the workload completed,
    # which run_allsize only does when both sides got all messages).
    for rate in ERROR_RATES:
        assert by_rate[rate][3] == 25
    # Goodput degrades monotonically-ish with error rate.
    assert by_rate[0.15][0] < by_rate[0.01][0] <= by_rate[0.0][0] * 1.01
    # The machinery is visibly at work: CRC drops and retransmissions.
    assert by_rate[0.05][1] > 0
    assert by_rate[0.05][2] > 0
    assert by_rate[0.0][2] == 0
