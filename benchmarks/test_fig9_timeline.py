"""Figure 9 — the timeline of the fault recovery process.

Reconstructs the paper's timeline: fault, detection (watchdog), FTD
phases (confirm, reset, MCP reload, table restore, event posting), then
the per-process FAULT_DETECTED handling.
"""

import pytest

from repro.analysis import recovery_timeline, render_timeline
from repro.workloads import run_recovery_experiment


def test_fig9_recovery_timeline(benchmark, report):
    def run():
        return run_recovery_experiment(hang_offset_us=620.0)

    exp = benchmark.pedantic(run, rounds=1, iterations=1)
    port_done_at = exp.record.events_posted_at + exp.per_port_us
    segments = recovery_timeline(exp.fault_at, exp.record, port_done_at)
    report("fig9_timeline", render_timeline(segments))

    # Segment ordering is strictly causal.
    for (_, start, end), (_, next_start, _) in zip(segments, segments[1:]):
        assert end >= start
        assert next_start == pytest.approx(end)
    # The three paper components dominate in the right proportions:
    # detection << FTD; MCP reload is the largest FTD phase; the
    # per-process handler is the single largest segment.
    durations = {name: end - start for name, start, end in segments}
    assert durations["fault -> FATAL interrupt (detection)"] < 1_100.0
    assert durations["MCP reload"] == pytest.approx(500_000.0, rel=0.02)
    assert durations["per-process FAULT_DETECTED handling"] \
        == max(durations.values())
    total = segments[-1][2] - segments[0][1]
    assert total < 2_000_000.0  # "complete fault recovery in under 2 sec"
