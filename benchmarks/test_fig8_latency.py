"""Figure 8 — half round-trip latency vs message length, GM vs FTGM.

Shape expectations: small-message plateau (~11.5 us GM, ~13.0 us FTGM,
gap ~1.5 us), then growth dominated by wire/DMA time; FTGM stays a
near-constant offset above GM ("not far behind the original GM").
"""

import pytest
from conftest import env_int

from repro.analysis import Series, render_ascii, to_csv
from repro.workloads import run_pingpong
from repro.cluster import build_cluster

SIZES = [1, 16, 64, 100, 256, 1024, 4096, 16384, 65536]
SMALL = [1, 16, 64, 100]


def test_fig8_latency_curves(benchmark, report):
    iters = env_int("REPRO_PP_ITERS", 20)

    def sweep():
        curves = {}
        for flavor in ("gm", "ftgm"):
            series = Series(flavor)
            for size in SIZES:
                result = run_pingpong(build_cluster(2, flavor=flavor),
                                      size, iterations=iters)
                series.add(size, result.half_rtt_us)
            curves[flavor] = series
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gm, ftgm = curves["gm"], curves["ftgm"]
    text = render_ascii([gm, ftgm],
                        "Figure 8. Latency comparison of GM and FTGM",
                        "message length (bytes)", "half-RTT (us)")
    report("fig8_latency", text + "\n\n" + to_csv([gm, ftgm], "bytes"))

    # Paper: short-message latency averaged over 1..100 bytes.
    gm_small = sum(gm.y_at(s) for s in SMALL) / len(SMALL)
    ftgm_small = sum(ftgm.y_at(s) for s in SMALL) / len(SMALL)
    assert gm_small == pytest.approx(11.5, rel=0.10)
    assert ftgm_small == pytest.approx(13.0, rel=0.10)
    assert ftgm_small - gm_small == pytest.approx(1.5, abs=0.6)
    # Latency grows with size; FTGM stays above GM everywhere but the
    # overhead is per-fragment bookkeeping, not multiplicative: the gap
    # is bounded by a constant plus a small per-4KB-fragment term.
    assert gm.y_at(65536) > gm.y_at(1)
    for size in SIZES:
        nfrags = max(1, -(-size // 4096))
        assert ftgm.y_at(size) >= gm.y_at(size)
        assert ftgm.y_at(size) - gm.y_at(size) < 2.5 + 0.6 * nfrags
