"""§5.2 — recovery effectiveness: the Table 1 campaign repeated on FTGM.

Paper: every interface hang was detected; 281 of 286 hangs fully
recovered (five under investigation).  We require full detection and a
>= 90% recovery rate on the simulated hang population.
"""

from conftest import env_int

from repro.faults import run_effectiveness_study


def test_recovery_effectiveness(benchmark, report):
    runs = env_int("REPRO_EFF_RUNS", 80)

    def study():
        return run_effectiveness_study(runs=runs, seed=7001, messages=10)

    result = benchmark.pedantic(study, rounds=1, iterations=1)
    report("recovery_effectiveness", result.render())

    assert result.hangs > 0
    # "this simple fault detection mechanism was able to detect all the
    # interface hangs reported in Table 1"
    assert result.detected == result.hangs
    assert result.recovery_rate >= 0.90
