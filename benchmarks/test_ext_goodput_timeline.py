"""Extension E5 — goodput timeline across a fault.

A continuous stream with a mid-run NIC hang, binned into a delivered-
messages-per-interval time series: full rate, a dead window exactly as
long as detection + FTD + per-process recovery, then full rate again
with the backlog draining first.  The area lost in the dip *is* Table 3
rendered as a workload's-eye view.
"""


from repro.analysis import Series, render_ascii
from repro.cluster import build_cluster
from repro.payload import Payload

BIN_US = 200_000.0          # 0.2 s bins
RUN_US = 6_000_000.0        # 6 s of stream
HANG_AT = 1_000_000.0       # fault at 1 s


def _timeline():
    cluster = build_cluster(2, flavor="ftgm")
    sim = cluster.sim
    deliveries = []          # timestamps
    state = {"stop": False}
    ports = {}

    def opener(node, pid, key):
        ports[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    while len(ports) < 2:
        sim.step()

    def sender():
        payload = Payload.phantom(1024, tag=5)
        while not state["stop"]:
            while ports["s"].send_tokens == 0 and not state["stop"]:
                yield from ports["s"].receive(timeout=500.0)
            if state["stop"]:
                return
            try:
                yield from ports["s"].send(payload, 1, 2)
            except Exception:
                return
            yield from ports["s"].receive(timeout=30.0)

    def receiver():
        for _ in range(16):
            yield from ports["r"].provide_receive_buffer(1024)
        while not state["stop"]:
            event = yield from ports["r"].receive_message(timeout=2_000.0)
            if event is not None:
                deliveries.append(sim.now)
                yield from ports["r"].provide_receive_buffer(1024)

    def crasher():
        yield sim.timeout(HANG_AT)
        cluster[1].mcp.die("timeline hang")

    base = sim.now
    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    sim.spawn(crasher())
    sim.run(until=base + RUN_US)
    state["stop"] = True
    sim.run(until=sim.now + 10_000.0)
    return cluster, base, deliveries


def test_ext_goodput_timeline(benchmark, report):
    cluster, base, deliveries = benchmark.pedantic(_timeline, rounds=1,
                                                   iterations=1)

    bins = {}
    for t in deliveries:
        bins[int((t - base) // BIN_US)] = \
            bins.get(int((t - base) // BIN_US), 0) + 1
    n_bins = int(RUN_US // BIN_US)
    series = Series("msgs/bin")
    for b in range(n_bins):
        series.add((b + 0.5) * BIN_US / 1e6, bins.get(b, 0))
    text = render_ascii(
        [series],
        "Extension E5: delivered messages per %.1fs bin (hang at t=1s)"
        % (BIN_US / 1e6), "time (s)", "messages", log_x=False)
    dead = [b for b in range(n_bins) if bins.get(b, 0) == 0]
    text += ("\n\ndead bins: %s (recovery window ~1.7s)"
             % [round((b + 0.5) * BIN_US / 1e6, 1) for b in dead])
    report("ext_goodput_timeline", text)

    hang_bin = int(HANG_AT // BIN_US)
    # Before the fault: every bin busy.
    for b in range(hang_bin):
        assert bins.get(b, 0) > 0
    # The recovery window (~1.7 s after detection) is dead air.
    assert dead, "expected a dead window after the hang"
    assert all(hang_bin <= b <= hang_bin + 10 for b in dead)
    # Traffic resumes and the tail of the run is busy again.
    assert bins.get(n_bins - 1, 0) > 0 or bins.get(n_bins - 2, 0) > 0
    # Steady-state rate recovers to the pre-fault level (within 40%).
    pre = sum(bins.get(b, 0) for b in range(hang_bin)) / hang_bin
    post_bins = [b for b in range(hang_bin, n_bins)
                 if bins.get(b, 0) > 0][2:]
    if post_bins:
        post = sum(bins[b] for b in post_bins) / len(post_bins)
        assert post > pre * 0.6
