"""Table 2 — GM vs FTGM on bandwidth, latency, host and LANai util.

Paper values: 92.4/92.0 MB/s, 11.5/13.0 us, 0.30/0.55 us, 0.75/1.15 us,
6.0/6.8 us.  The reproduction must preserve the *relations*: FTGM within
~1% of GM bandwidth, ~1.5 us slower on small messages, with the host and
LANai per-message overheads the paper measures.
"""

import pytest
from conftest import env_int

from repro.analysis import Table2
from repro.cluster import build_cluster
from repro.workloads import measure_utilization, run_allsize, run_pingpong


def test_table2_metrics(benchmark, report):
    pp_iters = env_int("REPRO_PP_ITERS", 20)
    bw_msgs = env_int("REPRO_BW_MSGS", 20)

    def measure():
        return Table2(
            gm_bandwidth=run_allsize(build_cluster(2, flavor="gm"),
                                     1 << 20, messages=max(bw_msgs // 4, 3)),
            ftgm_bandwidth=run_allsize(build_cluster(2, flavor="ftgm"),
                                       1 << 20,
                                       messages=max(bw_msgs // 4, 3)),
            gm_latency=run_pingpong(build_cluster(2, flavor="gm"), 64,
                                    iterations=pp_iters),
            ftgm_latency=run_pingpong(build_cluster(2, flavor="ftgm"), 64,
                                      iterations=pp_iters),
            gm_util=measure_utilization("gm", messages=60),
            ftgm_util=measure_utilization("ftgm", messages=60),
        )

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("table2_metrics", table.render())

    rows = {metric: (gm, ftgm) for metric, gm, ftgm, _, _ in table.rows()}
    gm_bw, ftgm_bw = rows["Bandwidth (MB/s)"]
    assert gm_bw == pytest.approx(92.4, rel=0.08)
    assert 0.95 <= ftgm_bw / gm_bw <= 1.001  # "no appreciable degradation"
    gm_lat, ftgm_lat = rows["Latency (us)"]
    assert gm_lat == pytest.approx(11.5, rel=0.10)
    assert ftgm_lat - gm_lat == pytest.approx(1.5, abs=0.6)
    assert rows["Host util. send (us)"] == (
        pytest.approx(0.30, abs=0.05), pytest.approx(0.55, abs=0.05))
    assert rows["Host util. recv (us)"] == (
        pytest.approx(0.75, abs=0.05), pytest.approx(1.15, abs=0.05))
    gm_lanai, ftgm_lanai = rows["LANai util. (us)"]
    assert gm_lanai == pytest.approx(6.0, abs=0.4)
    assert ftgm_lanai == pytest.approx(6.8, abs=0.4)
