"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results
are printed (visible with ``pytest -s``) and persisted under
``benchmarks/results/`` so the run leaves artifacts either way.

Scale knobs (environment variables):

* ``REPRO_T1_RUNS``      — Table 1 campaign size (default 150; paper 1000)
* ``REPRO_EFF_RUNS``     — effectiveness-study size (default 80)
* ``REPRO_PP_ITERS``     — ping-pong iterations per size (default 20)
* ``REPRO_BW_MSGS``      — allsize messages per side (default 20)
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture
def report():
    """report(name, text): print and persist one benchmark's output."""

    def _report(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / ("%s.txt" % name)
        path.write_text(text + "\n")
        print("\n" + text)
        return str(path)

    return _report
