"""Ablation A4 — classical checkpointing vs FTGM's continuous backup.

The paper's §4 motivation: periodic whole-interface checkpointing
"involves a great deal of overhead and in many ways can work against
the very basis of using a high-speed network", which is why FTGM keeps
continuous copies of *just* the tokens and sequence numbers instead.
This ablation measures the strawman: pause-copy-resume checkpointing of
the interface state, swept over checkpoint intervals, against FTGM.

Two costs show up:

* throughput: the interface is frozen ``pause/interval`` of the time;
* latency: any message landing in a pause waits out the rest of it, so
  mean small-message latency explodes from ~12 µs to hundreds.
"""


from repro.cluster import build_cluster
from repro.faults.checkpoint import CheckpointDaemon
from repro.workloads import run_allsize, run_pingpong

BW_INTERVALS_US = [10_000.0, 50_000.0, 150_000.0]
LAT_INTERVAL_US = 5_000.0


def _checkpointed_cluster(interval):
    cluster = build_cluster(2, flavor="gm")
    daemons = [CheckpointDaemon(node.driver, interval_us=interval)
               for node in cluster.nodes]
    for daemon in daemons:
        daemon.start()
    return cluster, daemons


def test_ablation_checkpoint_overhead(benchmark, report):
    def measure():
        rows = []
        gm_bw = run_allsize(build_cluster(2, flavor="gm"), 1 << 20,
                            messages=15).bandwidth_mb_s
        ftgm_bw = run_allsize(build_cluster(2, flavor="ftgm"), 1 << 20,
                              messages=15).bandwidth_mb_s
        gm_lat = run_pingpong(build_cluster(2, flavor="gm"), 64,
                              iterations=20).half_rtt_us
        ftgm_lat = run_pingpong(build_cluster(2, flavor="ftgm"), 64,
                                iterations=20).half_rtt_us
        rows.append(("plain GM (no FT)", None, gm_bw, gm_lat, 0.0))
        rows.append(("FTGM (continuous)", None, ftgm_bw, ftgm_lat, 0.0))

        # Throughput under periodic checkpointing.
        bw_by_interval = {}
        for interval in BW_INTERVALS_US:
            cluster, daemons = _checkpointed_cluster(interval)
            start = cluster.sim.now
            bw = run_allsize(cluster, 1 << 20, messages=15).bandwidth_mb_s
            elapsed = cluster.sim.now - start
            frozen = daemons[0].overhead_fraction(elapsed)
            pause = daemons[0].stats.mean_pause_us
            bw_by_interval[interval] = bw
            rows.append(("ckpt @%dms (stream)" % (interval / 1000),
                         pause, bw, float("nan"), frozen))

        # Latency under aggressive checkpointing: run long enough that
        # pings land inside pauses.  The mean barely moves (stalls are
        # rare events); the *worst case* is the story — a ping caught in
        # a pause waits out a millisecond-scale freeze.
        cluster, daemons = _checkpointed_cluster(LAT_INTERVAL_US)
        pp = run_pingpong(cluster, 64, iterations=400)
        ck_worst = max(pp.rtts) / 2.0
        ftgm_pp = run_pingpong(build_cluster(2, flavor="ftgm"), 64,
                               iterations=400)
        ftgm_worst = max(ftgm_pp.rtts) / 2.0
        rows.append(("ckpt @%dms worst ping" % (LAT_INTERVAL_US / 1000),
                     daemons[0].stats.mean_pause_us, float("nan"),
                     ck_worst, 0.0))
        rows.append(("FTGM worst ping", None, float("nan"), ftgm_worst,
                     0.0))
        return rows, bw_by_interval, ftgm_bw, ck_worst, ftgm_worst

    rows, bw_by_interval, ftgm_bw, ck_worst, ftgm_worst = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation A4: classical checkpointing vs FTGM",
             "%-24s %12s %12s %12s %10s" % ("scheme", "pause (us)",
                                            "BW (MB/s)", "latency (us)",
                                            "frozen %")]
    for name, pause, bw, lat, frozen in rows:
        lines.append("%-24s %12s %12.1f %12.2f %9.1f%%"
                     % (name, "-" if pause is None else "%.0f" % pause,
                        bw, lat, 100 * frozen))
    lines.append("")
    lines.append("FTGM pays 1.5us per message, always; checkpointing "
                 "pays milliseconds of frozen interface, repeatedly.")
    report("ablation_checkpoint", "\n".join(lines))

    # Aggressive checkpointing costs real bandwidth; FTGM does not.
    assert bw_by_interval[10_000.0] < ftgm_bw
    # Relaxing the interval recovers bandwidth (but widens the rollback
    # window on failure — the trade FTGM escapes entirely).
    assert bw_by_interval[150_000.0] > bw_by_interval[10_000.0]
    # Worst-case small-message latency explodes when a ping lands in a
    # pause; FTGM's worst case stays within a few us of its mean.
    assert ck_worst > ftgm_worst * 10
