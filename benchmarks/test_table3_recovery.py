"""Table 3 — components of the fault recovery time.

Paper: detection ~800 us, FTD ~765,000 us (500,000 of it reloading the
MCP), per-process ~900,000 us; total under 2 seconds.
"""

import pytest

from repro.analysis import Table3
from repro.gm import constants as C
from repro.workloads import run_recovery_experiment


def test_table3_recovery_components(benchmark, report):
    def measure():
        # Average detection over several fault phases relative to the
        # L_timer period (the paper reports the typical value).
        experiments = [run_recovery_experiment(hang_offset_us=offset)
                       for offset in (520.0, 610.0, 700.0, 790.0)]
        return experiments

    experiments = benchmark.pedantic(measure, rounds=1, iterations=1)
    detection = sum(e.detection_us for e in experiments) / len(experiments)
    exp = experiments[0]
    table = Table3(detection_us=detection, record=exp.record,
                   per_port_us=exp.per_port_us)
    report("table3_recovery", table.render())

    assert detection == pytest.approx(800.0, abs=250.0)
    assert exp.record.ftd_time == pytest.approx(765_000.0, rel=0.05)
    assert (exp.record.reloaded_at - exp.record.reset_at) \
        == pytest.approx(C.MCP_RELOAD_US, rel=0.02)
    assert exp.per_port_us == pytest.approx(900_000.0, rel=0.05)
    # Headline: complete recovery under 2 seconds.
    assert exp.total_us < 2_000_000.0
    assert all(e.completed_after_recovery for e in experiments)


def test_recovery_scales_linearly_with_open_ports(benchmark, report):
    """Paper: "the rest of the recovery time depends on the number of
    open ports at the time of failure"."""

    def measure():
        return [run_recovery_experiment(open_ports=n) for n in (1, 2, 3)]

    experiments = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Per-process recovery vs open ports"]
    for n, exp in zip((1, 2, 3), experiments):
        lines.append("%d port(s): %d handler runs, total %.0f us"
                     % (n, len(exp.port_recovery_times), exp.total_us))
    report("table3_port_scaling", "\n".join(lines))
    totals = [exp.total_us for exp in experiments]
    assert totals[1] > totals[0]
    assert totals[2] > totals[1]
    # Each extra port adds roughly one per-process handler time.
    slope = (totals[2] - totals[0]) / 2
    assert slope == pytest.approx(900_000.0, rel=0.25)
