"""Ablation A3 — per-port sequence streams vs the synchronized
per-connection alternative (§4.1).

The paper rejects synchronizing all of a node's processes onto shared
per-connection sequence streams because the cross-process lock "can
introduce unnecessary overhead".  This ablation quantifies that:

* a seqgen microbenchmark: allocation cost and lock contention with N
  concurrent senders on one node;
* the memory price of the chosen design: the receiver's ACK table grows
  per (connection, port) instead of per connection — bounded by GM's
  8 ports per node, which is the paper's counter-argument.
"""


from repro.ftgm.seqgen import (
    SYNC_LOCK_COST_US,
    PortSequenceStreams,
    SharedConnectionStreams,
)
from repro.sim import Simulator


def _alloc_storm(streams_for, senders=6, allocs=200, dests=4):
    """N processes each allocating from their stream; returns
    (elapsed simulated us, lock_waits or 0)."""
    sim = Simulator()
    made = streams_for(sim)
    done = []

    def worker(index):
        streams = made(index)
        for i in range(allocs):
            yield from streams.alloc(i % dests, 1)
            yield sim.timeout(0.5)  # inter-send work
        done.append(index)

    for index in range(senders):
        sim.spawn(worker(index))
    sim.run()
    assert len(done) == senders
    return sim.now


def test_ablation_seqgen(benchmark, report):
    senders, allocs = 6, 200

    def measure():
        # Paper design: independent per-port generators, no locks.
        per_port = _alloc_storm(
            lambda sim: (lambda i: PortSequenceStreams(i)),
            senders, allocs)
        # Rejected design: one shared, locked generator per connection.
        shared_state = {}

        def make_shared(sim):
            shared = SharedConnectionStreams(sim)
            shared_state["obj"] = shared
            return lambda i: shared

        shared = _alloc_storm(make_shared, senders, allocs)
        return per_port, shared, shared_state["obj"].lock_waits

    per_port_us, shared_us, lock_waits = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    # Workers run concurrently, so elapsed time is per-worker-chain:
    # the overhead each sender feels is (delta / allocs-per-sender).
    per_alloc_overhead = (shared_us - per_port_us) / allocs
    lines = [
        "Ablation A3: per-port streams vs synchronized per-connection "
        "streams",
        "%d senders x %d allocations:" % (senders, allocs),
        "  per-port (paper design):   %10.1f us total" % per_port_us,
        "  synchronized alternative:  %10.1f us total" % shared_us,
        "  overhead per send:         %10.3f us (lock cost %.2f us, "
        "%d contended waits)" % (per_alloc_overhead, SYNC_LOCK_COST_US,
                                 lock_waits),
        "",
        "memory price of the paper design: ACK entries per (connection,"
        " port) pair -> at most 8x per remote node (GM's port limit)",
    ]
    report("ablation_seqgen", "\n".join(lines))

    # The synchronized design costs at least the lock round-trip per
    # send, plus contention.
    assert shared_us > per_port_us
    assert per_alloc_overhead >= SYNC_LOCK_COST_US * 0.9
    assert lock_waits > 0  # concurrent senders do collide


def test_seqgen_correctness_equivalence(benchmark):
    """Both designs hand out gap-free per-stream sequence ranges."""

    def run():
        sim = Simulator()
        shared = SharedConnectionStreams(sim)
        grabbed = []

        def worker():
            for _ in range(50):
                base = yield from shared.alloc(1, 2)
                grabbed.append(base)

        for _ in range(4):
            sim.spawn(worker())
        sim.run()
        return grabbed

    grabbed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sorted(grabbed) == list(range(0, 400, 2))
